"""``make perf-guard`` — fail on benchmark throughput regressions.

Replays the drain-scale, shard-scale, and wire-throughput sweeps and
compares throughput against the committed baselines
(``BENCH_drain_scale.json``, ``BENCH_shard_scale.json``,
``BENCH_wire.json``), case by case.  A case regresses when current
throughput falls more than the tolerance below baseline (default 25%;
override with ``PERF_GUARD_TOLERANCE=0.4`` etc.; the socket-crossing
wire sweep gets extra slack).  The shard guard additionally enforces
the portable acceptance ratio (>= 3x throughput from 1 to 8 shards at
0% cross-shard traffic), and the wire guard enforces that pipelined
writes genuinely coalesce into multi-op batch cycles, that the serving
fast path (multi-process workers + binary codec) does not lose to
single-process JSON at the 8x8 shape within the same sweep, and that
replica-routed reads at four members clear the single-coordinator
baseline by the replica scaling floor (both same-run ratios are
advisory on single-core hosts, where nothing can run in parallel).

The committed baselines are machine-relative: after intentional changes
(or on a different machine class), regenerate them with
``python benchmarks/bench_drain_scale.py`` /
``python benchmarks/bench_shard_scale.py`` /
``python benchmarks/bench_wire_throughput.py`` and commit the new JSON.
"""

from __future__ import annotations

import json
import os
import sys

import bench_shard_scale
import bench_wire_throughput
from bench_drain_scale import REPORT_PATH, best_of, run_case, run_sweep

DEFAULT_TOLERANCE = 0.25
RETRY_REPEATS = 5

#: Portable floor for shards=1 -> shards=8 scaling at 0% cross traffic.
MIN_SHARD_SCALING = 3.0

#: The wire sweep crosses real sockets and an event loop, so it is far
#: noisier than the in-process sims — guard it with extra slack on top
#: of the shared tolerance.
WIRE_EXTRA_TOLERANCE = 0.15

#: Same-run ratio floor for the serving fast path: multi-process binary
#: must at least match single-process JSON at the 8x8 shape (it should
#: win outright wherever the workers get real cores).
MIN_WIRE_SCALING = 1.0

#: Same-run ratio floor for replica-routed reads: four replicas serving
#: gets directly must at least double the single-coordinator (all reads
#: through the batch cycle) throughput.  Replica routing's win is
#: parallel service capacity, so on a single-core host — where both
#: policies share one CPU and the comparison measures only per-frame
#: overhead — the floor is advisory (printed, never failing).
MIN_REPLICA_SCALING = 2.0


def guard_shard_scale(tolerance: float) -> int:
    """Shard-scale section; returns the number of confirmed failures."""
    path = bench_shard_scale.REPORT_PATH
    if not path.exists():
        print(f"no baseline at {path}; run bench_shard_scale.py first")
        return 1
    baseline_by_case = {
        (row["shards"], row["cross_fraction"]): row
        for row in json.loads(path.read_text())["results"]
    }
    current = bench_shard_scale.run_sweep(repeats=2)
    failures = []
    for row in current["results"]:
        key = (row["shards"], row["cross_fraction"])
        base = baseline_by_case.get(key)
        if base is None:
            continue  # baseline predates this case; nothing to guard
        floor = base["ops_per_sec"] * (1.0 - tolerance)
        ok = row["ops_per_sec"] >= floor
        print(
            f"  shards={row['shards']} cross={row['cross_fraction']:.0%}: "
            f"{row['ops_per_sec']:>10.1f} vs baseline "
            f"{base['ops_per_sec']:>10.1f} ({'ok' if ok else 'REGRESSED'})"
        )
        if not ok:
            failures.append(key)
    confirmed = []
    for shards, cross_fraction in failures:
        floor = baseline_by_case[(shards, cross_fraction)][
            "ops_per_sec"
        ] * (1.0 - tolerance)
        retried = best_of(
            RETRY_REPEATS,
            lambda: bench_shard_scale.run_case(shards, cross_fraction),
        )
        print(
            f"  retry shards={shards} cross={cross_fraction:.0%}: "
            f"{retried:.1f} vs floor {floor:.1f} "
            f"({'ok' if retried >= floor else 'REGRESSED'})"
        )
        if retried < floor:
            confirmed.append((shards, cross_fraction))
    scaling = [
        row["scaling_vs_one_shard"]
        for row in current["results"]
        if row["cross_fraction"] == 0.0 and row["shards"] == 8
    ]
    if scaling and scaling[0] < MIN_SHARD_SCALING:
        print(
            f"  shard scaling 1 -> 8 at 0% cross: {scaling[0]}x "
            f"(< {MIN_SHARD_SCALING}x acceptance)"
        )
        confirmed.append(("scaling", 0.0))
    return len(confirmed)


def _wire_key(row: dict) -> tuple:
    """Sweep-case key; old baselines predate the procs/codec axes."""
    return (
        row["clients"],
        row["pipeline"],
        row.get("procs", 1),
        row.get("codec", "json"),
    )


def guard_wire(tolerance: float) -> int:
    """Serve-layer wire section; returns the number of confirmed failures."""
    path = bench_wire_throughput.REPORT_PATH
    if not path.exists():
        print(f"no baseline at {path}; run bench_wire_throughput.py first")
        return 1
    tolerance = min(0.95, tolerance + WIRE_EXTRA_TOLERANCE)
    baseline_report = json.loads(path.read_text())
    baseline_by_case = {
        _wire_key(row): row for row in baseline_report["results"]
    }
    current = bench_wire_throughput.run_sweep(repeats=1)
    failures = []
    for row in current["results"]:
        key = _wire_key(row)
        base = baseline_by_case.get(key)
        if base is None:
            continue  # baseline predates this case; nothing to guard
        floor = base["ops_per_sec"] * (1.0 - tolerance)
        ok = row["ops_per_sec"] >= floor
        print(
            f"  wire clients={row['clients']:>2} pipeline={row['pipeline']} "
            f"procs={row['procs']} codec={row['codec']:<6}: "
            f"{row['ops_per_sec']:>8.1f} vs baseline "
            f"{base['ops_per_sec']:>8.1f} ({'ok' if ok else 'REGRESSED'})"
        )
        if not ok:
            failures.append(key)
    confirmed = []
    for clients, pipeline, procs, codec in failures:
        floor = baseline_by_case[(clients, pipeline, procs, codec)][
            "ops_per_sec"
        ] * (1.0 - tolerance)
        retried = bench_wire_throughput.best_of(
            3,
            lambda: bench_wire_throughput.run_case(
                clients, pipeline, procs, codec
            ),
        )["ops_per_sec"]
        print(
            f"  retry wire clients={clients} pipeline={pipeline} "
            f"procs={procs} codec={codec}: "
            f"{retried:.1f} vs floor {floor:.1f} "
            f"({'ok' if retried >= floor else 'REGRESSED'})"
        )
        if retried < floor:
            confirmed.append((clients, pipeline, procs, codec))
    pipelined = next(
        (
            row
            for row in current["results"]
            if _wire_key(row) == (8, 8, 1, "json")
        ),
        None,
    )
    if pipelined is not None and pipelined["mean_batch"] < 4.0:
        print(
            f"  wire batching acceptance: mean batch "
            f"{pipelined['mean_batch']} at 8x8 (< 4.0)"
        )
        confirmed.append(("batching", 0, 0, ""))
    confirmed.extend(_wire_scaling_floor(current))
    confirmed.extend(_replica_guard(current, baseline_report, tolerance))
    return len(confirmed)


def _replica_guard(
    current: dict, baseline_report: dict, tolerance: float
) -> list:
    """Replica-sweep section: per-row baselines plus the scaling floor.

    Rows are keyed (members, policy); a baseline that predates the
    replica sweep guards nothing.  The portable acceptance is the
    same-run ratio of replica@4 against coordinator@4 (see
    :data:`MIN_REPLICA_SCALING` for why it is advisory on single-core
    hosts).
    """
    sweep = current.get("replica_sweep")
    if not sweep:
        return []
    baseline_rows = {
        (row["members"], row["policy"]): row
        for row in baseline_report.get("replica_sweep", {}).get("results", [])
    }
    confirmed = []
    rows = {}
    for row in sweep["results"]:
        key = (row["members"], row["policy"])
        rows[key] = row
        base = baseline_rows.get(key)
        if base is None:
            continue  # baseline predates the replica sweep
        floor = base["gets_per_sec"] * (1.0 - tolerance)
        ok = row["gets_per_sec"] >= floor
        print(
            f"  replica members={row['members']} policy={row['policy']:<11}: "
            f"{row['gets_per_sec']:>8.1f} vs baseline "
            f"{base['gets_per_sec']:>8.1f} ({'ok' if ok else 'REGRESSED'})"
        )
        if ok:
            continue
        retried = max(
            bench_wire_throughput.run_replica_case(*key)["gets_per_sec"]
            for _ in range(3)
        )
        print(
            f"  retry replica members={key[0]} policy={key[1]}: "
            f"{retried:.1f} vs floor {floor:.1f} "
            f"({'ok' if retried >= floor else 'REGRESSED'})"
        )
        if retried < floor:
            confirmed.append(("replica",) + key)
    replica = rows.get((4, "replica"))
    coordinator = rows.get((4, "coordinator"))
    if replica is None or coordinator is None:
        return confirmed
    advisory = (os.cpu_count() or 1) < 2
    ratio = replica["gets_per_sec"] / max(1e-9, coordinator["gets_per_sec"])
    ok = ratio >= MIN_REPLICA_SCALING
    print(
        f"  replica scaling floor: 4 replicas {replica['gets_per_sec']:.1f} "
        f"vs coordinator {coordinator['gets_per_sec']:.1f} = {ratio:.2f}x "
        f"(need >= {MIN_REPLICA_SCALING}x"
        f"{', advisory on single-core host' if advisory else ''})"
    )
    if ok or advisory:
        return confirmed
    fast_retry = max(
        bench_wire_throughput.run_replica_case(4, "replica")["gets_per_sec"]
        for _ in range(3)
    )
    slow_retry = max(
        bench_wire_throughput.run_replica_case(4, "coordinator")["gets_per_sec"]
        for _ in range(3)
    )
    ratio = fast_retry / max(1e-9, slow_retry)
    ok = ratio >= MIN_REPLICA_SCALING
    print(
        f"  retry replica scaling floor: {fast_retry:.1f} vs "
        f"{slow_retry:.1f} = {ratio:.2f}x ({'ok' if ok else 'REGRESSED'})"
    )
    if not ok:
        confirmed.append(("replica-scaling", 4, ""))
    return confirmed


def _wire_scaling_floor(current: dict) -> list:
    """The fast path must not lose to the slow path on the same run.

    Compares multi-process binary against single-process JSON at the
    8x8 shape *within one sweep* — both sides rode the same host noise,
    so the ratio is far steadier than either absolute number.  A losing
    first sample is re-measured best-of-3 on both sides before failing.
    On a single-core host the workers cannot run in parallel at all and
    the comparison degenerates to pure IPC overhead, so there the floor
    is advisory (printed, never failing).
    """
    rows = {_wire_key(row): row for row in current["results"]}
    fast = rows.get((8, 8, 2, "binary"))
    slow = rows.get((8, 8, 1, "json"))
    if fast is None or slow is None:
        return []
    advisory = (os.cpu_count() or 1) < 2
    ratio = fast["ops_per_sec"] / max(1e-9, slow["ops_per_sec"])
    ok = ratio >= MIN_WIRE_SCALING
    print(
        f"  wire scaling floor (8x8): multiproc binary "
        f"{fast['ops_per_sec']:.1f} vs single-proc json "
        f"{slow['ops_per_sec']:.1f} = {ratio:.2f}x "
        f"(need >= {MIN_WIRE_SCALING}x"
        f"{', advisory on single-core host' if advisory else ''})"
    )
    if ok or advisory:
        return []
    fast_retry = bench_wire_throughput.best_of(
        3, lambda: bench_wire_throughput.run_case(8, 8, 2, "binary")
    )["ops_per_sec"]
    slow_retry = bench_wire_throughput.best_of(
        3, lambda: bench_wire_throughput.run_case(8, 8, 1, "json")
    )["ops_per_sec"]
    ratio = fast_retry / max(1e-9, slow_retry)
    ok = ratio >= MIN_WIRE_SCALING
    print(
        f"  retry wire scaling floor (8x8): {fast_retry:.1f} vs "
        f"{slow_retry:.1f} = {ratio:.2f}x "
        f"({'ok' if ok else 'REGRESSED'})"
    )
    return [] if ok else [("wire-scaling", 8, 8, "")]


def main() -> int:
    tolerance = float(os.environ.get("PERF_GUARD_TOLERANCE", DEFAULT_TOLERANCE))
    if not REPORT_PATH.exists():
        print(f"no baseline at {REPORT_PATH}; run bench_drain_scale.py first")
        return 2
    baseline = json.loads(REPORT_PATH.read_text())
    baseline_by_case = {
        (row["scenario"], row["members"], row["depth"]): row
        for row in baseline["results"]
    }
    current = run_sweep(repeats=2)
    failures = []
    for row in current["results"]:
        key = (row["scenario"], row["members"], row["depth"])
        base = baseline_by_case.get(key)
        if base is None:
            continue  # baseline predates this case; nothing to guard
        floor = base["indexed_ops_per_sec"] * (1.0 - tolerance)
        ok = row["indexed_ops_per_sec"] >= floor
        print(
            f"  {row['scenario']:<13} members={row['members']} "
            f"depth={row['depth']:>5}: {row['indexed_ops_per_sec']:>12.1f} "
            f"vs baseline {base['indexed_ops_per_sec']:>12.1f} "
            f"({'ok' if ok else 'REGRESSED'})"
        )
        if not ok:
            failures.append(key)
    if failures:
        # One timer tick of scheduler noise shouldn't fail the build:
        # re-measure suspects with more repeats before judging.
        confirmed = []
        for scenario, members, depth in failures:
            floor = baseline_by_case[(scenario, members, depth)][
                "indexed_ops_per_sec"
            ] * (1.0 - tolerance)
            retried = best_of(
                RETRY_REPEATS,
                lambda: run_case(scenario, members, depth, "indexed"),
            )
            print(
                f"  retry {scenario} members={members} depth={depth}: "
                f"{retried:.1f} vs floor {floor:.1f} "
                f"({'ok' if retried >= floor else 'REGRESSED'})"
            )
            if retried < floor:
                confirmed.append((scenario, members, depth))
        failures = confirmed
    shard_failures = guard_shard_scale(tolerance)
    wire_failures = guard_wire(tolerance)
    if failures or shard_failures or wire_failures:
        print(
            f"perf-guard: {len(failures) + shard_failures + wire_failures} "
            f"case(s) regressed more than {tolerance:.0%} vs the committed "
            f"baselines"
        )
        return 1
    print(f"perf-guard: all cases within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
