"""``make perf-guard`` — fail on drain-engine throughput regressions.

Replays the drain-scale sweep and compares indexed-drain ops/sec against
the committed baseline ``BENCH_drain_scale.json``, case by case.  A case
regresses when current throughput falls more than the tolerance below
baseline (default 25%; override with ``PERF_GUARD_TOLERANCE=0.4`` etc.).

The committed baseline is machine-relative: after intentional changes
(or on a different machine class), regenerate it with
``python benchmarks/bench_drain_scale.py`` and commit the new JSON.
"""

from __future__ import annotations

import json
import os
import sys

from bench_drain_scale import REPORT_PATH, best_of, run_case, run_sweep

DEFAULT_TOLERANCE = 0.25
RETRY_REPEATS = 5


def main() -> int:
    tolerance = float(os.environ.get("PERF_GUARD_TOLERANCE", DEFAULT_TOLERANCE))
    if not REPORT_PATH.exists():
        print(f"no baseline at {REPORT_PATH}; run bench_drain_scale.py first")
        return 2
    baseline = json.loads(REPORT_PATH.read_text())
    baseline_by_case = {
        (row["scenario"], row["members"], row["depth"]): row
        for row in baseline["results"]
    }
    current = run_sweep(repeats=2)
    failures = []
    for row in current["results"]:
        key = (row["scenario"], row["members"], row["depth"])
        base = baseline_by_case.get(key)
        if base is None:
            continue  # baseline predates this case; nothing to guard
        floor = base["indexed_ops_per_sec"] * (1.0 - tolerance)
        ok = row["indexed_ops_per_sec"] >= floor
        print(
            f"  {row['scenario']:<13} members={row['members']} "
            f"depth={row['depth']:>5}: {row['indexed_ops_per_sec']:>12.1f} "
            f"vs baseline {base['indexed_ops_per_sec']:>12.1f} "
            f"({'ok' if ok else 'REGRESSED'})"
        )
        if not ok:
            failures.append(key)
    if failures:
        # One timer tick of scheduler noise shouldn't fail the build:
        # re-measure suspects with more repeats before judging.
        confirmed = []
        for scenario, members, depth in failures:
            floor = baseline_by_case[(scenario, members, depth)][
                "indexed_ops_per_sec"
            ] * (1.0 - tolerance)
            retried = best_of(
                RETRY_REPEATS,
                lambda: run_case(scenario, members, depth, "indexed"),
            )
            print(
                f"  retry {scenario} members={members} depth={depth}: "
                f"{retried:.1f} vs floor {floor:.1f} "
                f"({'ok' if retried >= floor else 'REGRESSED'})"
            )
            if retried < floor:
                confirmed.append((scenario, members, depth))
        failures = confirmed
    if failures:
        print(
            f"perf-guard: {len(failures)} case(s) regressed more than "
            f"{tolerance:.0%} vs {REPORT_PATH.name}"
        )
        return 1
    print(f"perf-guard: all cases within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
