"""Tests for core value types."""

from __future__ import annotations

from repro.types import (
    DeliveryRecord,
    Envelope,
    Message,
    MessageId,
    MessageIdAllocator,
    freeze_ancestors,
    is_hashable,
)


class TestMessageId:
    def test_ordering_is_lexicographic(self):
        assert MessageId("a", 1) < MessageId("a", 2)
        assert MessageId("a", 9) < MessageId("b", 0)

    def test_string_form(self):
        assert str(MessageId("node", 7)) == "node:7"

    def test_hashable_and_equal(self):
        assert MessageId("a", 1) == MessageId("a", 1)
        assert len({MessageId("a", 1), MessageId("a", 1)}) == 1


class TestAllocator:
    def test_sequential_allocation(self):
        allocator = MessageIdAllocator("x")
        assert allocator.next_id() == MessageId("x", 0)
        assert allocator.next_id() == MessageId("x", 1)

    def test_custom_start(self):
        allocator = MessageIdAllocator("x", start=10)
        assert allocator.next_id() == MessageId("x", 10)

    def test_sender_property(self):
        assert MessageIdAllocator("svc").sender == "svc"


class TestMessage:
    def test_sender_shortcut(self):
        message = Message(MessageId("a", 0), "op")
        assert message.sender == "a"

    def test_frozen(self):
        message = Message(MessageId("a", 0), "op")
        try:
            message.operation = "other"  # type: ignore[misc]
            assert False, "should be immutable"
        except AttributeError:
            pass


class TestEnvelope:
    def test_msg_id_shortcut(self):
        envelope = Envelope(Message(MessageId("a", 3), "op"))
        assert envelope.msg_id == MessageId("a", 3)

    def test_with_metadata_merges(self):
        envelope = Envelope(Message(MessageId("a", 0), "op"), {"x": 1})
        extended = envelope.with_metadata(y=2)
        assert extended.metadata == {"x": 1, "y": 2}
        assert envelope.metadata == {"x": 1}  # original untouched

    def test_with_metadata_overrides(self):
        envelope = Envelope(Message(MessageId("a", 0), "op"), {"x": 1})
        assert envelope.with_metadata(x=9).metadata["x"] == 9

    def test_default_metadata_empty(self):
        assert Envelope(Message(MessageId("a", 0), "op")).metadata == {}


class TestHelpers:
    def test_freeze_ancestors_none(self):
        assert freeze_ancestors(None) == frozenset()

    def test_freeze_ancestors_single(self):
        label = MessageId("a", 0)
        assert freeze_ancestors(label) == frozenset({label})

    def test_freeze_ancestors_iterable(self):
        labels = [MessageId("a", 0), MessageId("b", 1)]
        assert freeze_ancestors(labels) == frozenset(labels)

    def test_freeze_ancestors_generator(self):
        result = freeze_ancestors(MessageId("a", i) for i in range(3))
        assert len(result) == 3

    def test_is_hashable(self):
        assert is_hashable("text")
        assert is_hashable(MessageId("a", 0))
        assert not is_hashable([])

    def test_delivery_record_fields(self):
        record = DeliveryRecord("a", MessageId("b", 0), 4, 1.5)
        assert record.entity == "a"
        assert record.position == 4
        assert record.time == 1.5
