"""Tests for matrix clocks."""

from __future__ import annotations

from repro.clocks.matrix import MatrixClock
from repro.clocks.vector import VectorClock


class TestBasics:
    def test_zero_has_empty_rows(self):
        clock = MatrixClock.zero()
        assert clock.row("a") == VectorClock.zero()
        assert clock.size_entries() == 0

    def test_record_event_advances_own_row(self):
        clock = MatrixClock.zero().record_event("a")
        assert clock.row("a")["a"] == 1
        assert clock.row("b")["a"] == 0

    def test_record_event_is_pure(self):
        base = MatrixClock.zero()
        base.record_event("a")
        assert base.row("a")["a"] == 0

    def test_merge_joins_rows(self):
        left = MatrixClock.zero().record_event("a")
        right = MatrixClock.zero().record_event("b")
        merged = left.merge(right)
        assert merged.row("a")["a"] == 1
        assert merged.row("b")["b"] == 1

    def test_equality_and_hash(self):
        a = MatrixClock.zero().record_event("a")
        b = MatrixClock.zero().record_event("a")
        assert a == b
        assert hash(a) == hash(b)


class TestKnowledgePropagation:
    def test_receive_absorbs_sender_knowledge(self):
        sender = MatrixClock.zero().record_event("a")
        receiver = MatrixClock.zero().receive_at("b", "a", sender)
        # b now knows a's event.
        assert receiver.row("b")["a"] == 1

    def test_min_known_tracks_global_knowledge(self):
        # a produces one event; only a knows it at first.
        a_view = MatrixClock.zero().record_event("a")
        members = ["a", "b"]
        assert a_view.min_known("a", members) == 0
        # b receives a's message: now both rows record a's event.
        b_view = MatrixClock.zero().receive_at("b", "a", a_view)
        combined = a_view.merge(b_view)
        assert combined.min_known("a", members) == 1

    def test_min_known_empty_members(self):
        assert MatrixClock.zero().min_known("a", []) == 0

    def test_size_entries_grows_quadratically_in_principle(self):
        clock = MatrixClock.zero()
        for entity in ("a", "b", "c"):
            clock = clock.record_event(entity)
        # three rows each with one entry
        assert clock.size_entries() == 3
        merged = clock.receive_at("a", "b", clock)
        assert merged.size_entries() >= 3
