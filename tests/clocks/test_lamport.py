"""Tests for Lamport scalar clocks."""

from __future__ import annotations

from repro.clocks.lamport import LamportClock, Timestamp


class TestTick:
    def test_tick_increments(self):
        clock = LamportClock("a")
        assert clock.tick() == Timestamp(1, "a")
        assert clock.tick() == Timestamp(2, "a")

    def test_peek_does_not_advance(self):
        clock = LamportClock("a")
        clock.tick()
        assert clock.peek() == Timestamp(1, "a")
        assert clock.peek() == Timestamp(1, "a")

    def test_custom_start(self):
        clock = LamportClock("a", start=10)
        assert clock.tick() == Timestamp(11, "a")


class TestObserve:
    def test_observe_jumps_past_received_stamp(self):
        clock = LamportClock("a")
        clock.observe(Timestamp(7, "b"))
        assert clock.counter == 8

    def test_observe_smaller_stamp_still_advances(self):
        clock = LamportClock("a", start=5)
        clock.observe(Timestamp(2, "b"))
        assert clock.counter == 6

    def test_send_receive_preserves_happens_before(self):
        sender = LamportClock("a")
        receiver = LamportClock("b")
        send_stamp = sender.tick()
        receive_stamp = receiver.observe(send_stamp)
        assert send_stamp < receive_stamp


class TestTimestampOrdering:
    def test_total_order_by_counter_then_entity(self):
        assert Timestamp(1, "b") < Timestamp(2, "a")
        assert Timestamp(1, "a") < Timestamp(1, "b")

    def test_equality(self):
        assert Timestamp(3, "x") == Timestamp(3, "x")

    def test_sorting_is_deterministic(self):
        stamps = [Timestamp(2, "a"), Timestamp(1, "b"), Timestamp(1, "a")]
        assert sorted(stamps) == [
            Timestamp(1, "a"),
            Timestamp(1, "b"),
            Timestamp(2, "a"),
        ]
