"""Tests for vector clocks, including algebraic properties."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.clocks.vector import VectorClock, cbcast_deliverable

ENTITIES = ["a", "b", "c", "d"]


def clocks() -> st.SearchStrategy[VectorClock]:
    return st.builds(
        VectorClock,
        st.dictionaries(
            st.sampled_from(ENTITIES), st.integers(0, 8), max_size=4
        ),
    )


class TestBasics:
    def test_zero_clock_has_zero_components(self):
        assert VectorClock.zero()["anything"] == 0

    def test_increment_is_pure(self):
        base = VectorClock.zero()
        bumped = base.increment("a")
        assert base["a"] == 0
        assert bumped["a"] == 1

    def test_zero_components_are_normalised(self):
        assert VectorClock({"a": 0}) == VectorClock.zero()
        assert VectorClock({"a": 0}).size_entries() == 0

    def test_merge_takes_componentwise_max(self):
        left = VectorClock({"a": 3, "b": 1})
        right = VectorClock({"a": 1, "c": 2})
        merged = left.merge(right)
        assert merged.as_dict() == {"a": 3, "b": 1, "c": 2}

    def test_hash_consistent_with_equality(self):
        assert hash(VectorClock({"a": 1})) == hash(VectorClock({"a": 1, "b": 0}))


class TestComparisons:
    def test_causal_precedence(self):
        earlier = VectorClock({"a": 1})
        later = VectorClock({"a": 1, "b": 1})
        assert earlier < later
        assert earlier <= later
        assert not later <= earlier

    def test_concurrency(self):
        left = VectorClock({"a": 1})
        right = VectorClock({"b": 1})
        assert left.concurrent_with(right)
        assert right.concurrent_with(left)

    def test_clock_not_concurrent_with_itself(self):
        clock = VectorClock({"a": 2})
        assert not clock.concurrent_with(clock)

    def test_not_less_than_self(self):
        clock = VectorClock({"a": 1})
        assert not clock < clock


class TestAlgebraicProperties:
    @given(clocks(), clocks())
    def test_merge_commutative(self, u, v):
        assert u.merge(v) == v.merge(u)

    @given(clocks(), clocks(), clocks())
    def test_merge_associative(self, u, v, w):
        assert u.merge(v).merge(w) == u.merge(v.merge(w))

    @given(clocks())
    def test_merge_idempotent(self, u):
        assert u.merge(u) == u

    @given(clocks(), clocks())
    def test_merge_is_upper_bound(self, u, v):
        merged = u.merge(v)
        assert u <= merged and v <= merged

    @given(clocks(), clocks())
    def test_exactly_one_relation_holds(self, u, v):
        relations = [u == v, u < v, v < u, u.concurrent_with(v)]
        assert sum(relations) == 1

    @given(clocks(), st.sampled_from(ENTITIES))
    def test_increment_strictly_advances(self, u, entity):
        assert u < u.increment(entity)


class TestCbcastPredicate:
    def test_next_message_from_sender_is_deliverable(self):
        local = VectorClock.zero()
        msg = VectorClock({"a": 1})
        assert cbcast_deliverable(msg, "a", local)

    def test_gap_from_sender_blocks(self):
        local = VectorClock.zero()
        msg = VectorClock({"a": 2})
        assert not cbcast_deliverable(msg, "a", local)

    def test_missing_third_party_dependency_blocks(self):
        local = VectorClock.zero()
        # Sender had seen b's first message before sending.
        msg = VectorClock({"a": 1, "b": 1})
        assert not cbcast_deliverable(msg, "a", local)

    def test_satisfied_third_party_dependency_delivers(self):
        local = VectorClock({"b": 1})
        msg = VectorClock({"a": 1, "b": 1})
        assert cbcast_deliverable(msg, "a", local)

    def test_duplicate_old_message_not_deliverable(self):
        local = VectorClock({"a": 1})
        msg = VectorClock({"a": 1})
        assert not cbcast_deliverable(msg, "a", local)
