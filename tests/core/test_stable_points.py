"""Tests for local stable-point detection."""

from __future__ import annotations

from repro.core.commutativity import CommutativitySpec
from repro.core.stable_points import StablePointDetector
from repro.types import Envelope, Message, MessageId


def envelope(op: str, seqno: int) -> Envelope:
    return Envelope(Message(MessageId("s", seqno), op))


def spec() -> CommutativitySpec:
    return CommutativitySpec(commutative_ops={"inc", "dec"})


class TestDetection:
    def test_non_commutative_delivery_is_a_stable_point(self):
        detector = StablePointDetector("a", spec())
        assert detector.observe(envelope("inc", 0), 1.0) is None
        point = detector.observe(envelope("rd", 1), 2.0)
        assert point is not None
        assert point.index == 0
        assert point.position == 1
        assert point.pending_commutative == 1

    def test_commutative_run_lengths_counted(self):
        detector = StablePointDetector("a", spec())
        for i in range(5):
            detector.observe(envelope("inc", i), float(i))
        point = detector.observe(envelope("rd", 5), 6.0)
        assert point.pending_commutative == 5

    def test_counter_resets_between_points(self):
        detector = StablePointDetector("a", spec())
        detector.observe(envelope("inc", 0), 0.0)
        detector.observe(envelope("rd", 1), 1.0)
        detector.observe(envelope("dec", 2), 2.0)
        point = detector.observe(envelope("rd", 3), 3.0)
        assert point.pending_commutative == 1
        assert point.index == 1

    def test_consecutive_sync_messages(self):
        detector = StablePointDetector("a", spec())
        first = detector.observe(envelope("rd", 0), 0.0)
        second = detector.observe(envelope("rd", 1), 1.0)
        assert first.index == 0 and second.index == 1
        assert second.pending_commutative == 0

    def test_explicit_sync_labels(self):
        detector = StablePointDetector("a", spec())
        label = MessageId("s", 0)
        detector.mark_sync(label)
        point = detector.observe(Envelope(Message(label, "inc")), 0.0)
        assert point is not None

    def test_listeners_invoked(self):
        detector = StablePointDetector("a", spec())
        seen = []
        detector.subscribe(seen.append)
        detector.observe(envelope("rd", 0), 0.0)
        assert len(seen) == 1 and seen[0].index == 0

    def test_points_and_labels_accessors(self):
        detector = StablePointDetector("a", spec())
        detector.observe(envelope("rd", 0), 0.0)
        detector.observe(envelope("inc", 1), 1.0)
        detector.observe(envelope("rd", 2), 2.0)
        assert detector.count == 2
        assert detector.labels() == [MessageId("s", 0), MessageId("s", 2)]

    def test_time_recorded(self):
        detector = StablePointDetector("a", spec())
        point = detector.observe(envelope("rd", 0), 7.5)
        assert point.time == 7.5
        assert point.entity == "a"
