"""Tests for replicas: live state, VAL(m) stable states, deferred reads."""

from __future__ import annotations

from repro.broadcast.osend import OSendBroadcast
from repro.core.commutativity import counter_spec
from repro.core.replica import Replica
from repro.core.state_machine import counter_machine
from repro.net.latency import ConstantLatency, PerPairLatency, UniformLatency
from tests.conftest import build_group


def payload(item: str = "x") -> dict:
    return {"item": item, "amount": 1}


def wire_replicas(stacks):
    return {
        member: Replica(stack, counter_machine(), counter_spec())
        for member, stack in stacks.items()
    }


class TestLiveState:
    def test_applies_deliveries_in_order(self):
        scheduler, _, stacks = build_group(OSendBroadcast, seed=1)
        replicas = wire_replicas(stacks)
        stacks["a"].osend("inc", payload())
        stacks["b"].osend("inc", payload())
        scheduler.run()
        assert all(r.read_now() == 2 for r in replicas.values())
        assert all(r.messages_applied == 2 for r in replicas.values())


class TestStableStates:
    def test_stable_state_is_causal_cut_not_live_state(self):
        """A concurrent message delivered early must not leak into VAL(m)."""
        latency = PerPairLatency(
            # b's unrelated message reaches c fast, a's chain reaches c slow.
            {("a", "c"): ConstantLatency(5.0)},
            default=ConstantLatency(1.0),
        )
        scheduler, _, stacks = build_group(OSendBroadcast, latency=latency)
        replicas = wire_replicas(stacks)
        m1 = stacks["a"].osend("inc", payload())
        stacks["b"].osend("inc", payload())  # concurrent, not in the cut
        stacks["a"].osend("rd", payload(), occurs_after=m1)  # sync, cut={m1}
        scheduler.run()
        values = {m: r.stable_state_at(0) for m, r in replicas.items()}
        assert set(values.values()) == {1}
        # Live states include both incs everywhere by the end.
        assert all(r.read_now() == 2 for r in replicas.values())

    def test_chained_cycles_accumulate(self):
        scheduler, _, stacks = build_group(OSendBroadcast, seed=4)
        replicas = wire_replicas(stacks)
        c1 = stacks["a"].osend("inc", payload())
        s1 = stacks["a"].osend("rd", payload(), occurs_after=c1)
        c2 = stacks["a"].osend("inc", payload(), occurs_after=s1)
        stacks["a"].osend("rd", payload(), occurs_after=c2)
        scheduler.run()
        for replica in replicas.values():
            assert replica.stable_point_count == 2
            assert replica.stable_state_at(0) == 1
            assert replica.stable_state_at(1) == 2

    def test_stable_state_at_out_of_range(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        replicas = wire_replicas(stacks)
        scheduler.run()
        assert replicas["a"].stable_state_at(0) is None


class TestDeferredReads:
    def test_deferred_read_fires_at_next_stable_point(self):
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=UniformLatency(0.2, 2.0), seed=5
        )
        replicas = wire_replicas(stacks)
        results = []
        for member, replica in replicas.items():
            replica.read_at_next_stable_point(
                lambda value, point, member=member: results.append(
                    (member, value, point.index)
                )
            )
        m1 = stacks["a"].osend("inc", payload())
        stacks["a"].osend("rd", payload(), occurs_after=m1)
        scheduler.run()
        assert len(results) == 3
        assert {value for _, value, __ in results} == {1}
        assert {index for _, __, index in results} == {0}

    def test_deferred_read_does_not_fire_without_sync(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        replicas = wire_replicas(stacks)
        fired = []
        replicas["a"].read_at_next_stable_point(
            lambda value, point: fired.append(value)
        )
        stacks["a"].osend("inc", payload())
        scheduler.run()
        assert fired == []

    def test_deferred_reads_consumed_once(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        replicas = wire_replicas(stacks)
        fired = []
        replicas["a"].read_at_next_stable_point(
            lambda value, point: fired.append(point.index)
        )
        s1 = stacks["a"].osend("rd", payload())
        stacks["a"].osend("rd", payload(), occurs_after=s1)
        scheduler.run()
        assert fired == [0]
