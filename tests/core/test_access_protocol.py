"""Tests for the assembled data-access systems."""

from __future__ import annotations

import pytest

from repro.analysis.convergence import stable_points_agree, states_agree
from repro.core.access_protocol import (
    CausalSystem,
    StablePointSystem,
    TotalOrderSystem,
)
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.errors import ConfigurationError
from repro.net.latency import UniformLatency


MEMBERS = ["a", "b", "c"]


def payload() -> dict:
    return {"item": "x", "amount": 1}


class TestStablePointSystem:
    def test_requests_converge(self):
        system = StablePointSystem(
            MEMBERS, counter_machine, counter_spec(),
            latency=UniformLatency(0.2, 2.0), seed=1,
        )
        system.request("a", "inc", payload())
        system.request("b", "dec", payload())
        system.request("a", "rd", payload())
        system.run()
        assert states_agree(system.states()) == []

    def test_stable_points_agree_across_members(self):
        system = StablePointSystem(
            MEMBERS, counter_machine, counter_spec(),
            latency=UniformLatency(0.2, 2.0), seed=2,
        )
        for _ in range(3):
            system.request("a", "inc", payload())
        system.request("a", "rd", payload())
        system.run()
        assert stable_points_agree(system.replicas) == []
        assert all(
            r.stable_state_at(0) == 3 for r in system.replicas.values()
        )

    def test_empty_member_list_rejected(self):
        with pytest.raises(ConfigurationError):
            StablePointSystem([], counter_machine, counter_spec())

    def test_delivered_sequences_exposed(self):
        system = StablePointSystem(
            MEMBERS, counter_machine, counter_spec(), seed=3
        )
        label = system.request("a", "inc", payload())
        system.run()
        sequences = system.delivered_sequences()
        assert all(label in seq for seq in sequences.values())


class TestTotalOrderSystem:
    @pytest.mark.parametrize("engine", ["sequencer", "lamport"])
    def test_engines_converge(self, engine):
        system = TotalOrderSystem(
            MEMBERS, counter_machine, counter_spec(), engine=engine,
            latency=UniformLatency(0.2, 2.0), seed=4,
        )
        system.request("a", "inc", payload())
        system.request("b", "inc", payload())
        system.request("c", "dec", payload())
        system.run()
        assert states_agree(system.states()) == []
        assert set(system.states().values()) == {1}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            TotalOrderSystem(
                MEMBERS, counter_machine, counter_spec(), engine="zeus"
            )

    def test_engine_recorded(self):
        system = TotalOrderSystem(
            MEMBERS, counter_machine, counter_spec(), engine="lamport"
        )
        assert system.engine == "lamport"


class TestCausalSystem:
    def test_direct_osend_access(self):
        system = CausalSystem(
            MEMBERS, counter_machine, counter_spec(),
            latency=UniformLatency(0.2, 2.0), seed=5,
        )
        m1 = system.osend("a", "inc", payload())
        system.osend("b", "rd", payload(), occurs_after=m1)
        system.run()
        assert states_agree(system.states()) == []

    def test_members_listed(self):
        system = CausalSystem(MEMBERS, counter_machine, counter_spec())
        assert system.members == MEMBERS

    def test_run_until(self):
        system = CausalSystem(MEMBERS, counter_machine, counter_spec())
        system.osend("a", "inc", payload())
        system.run_until(0.5)
        assert system.scheduler.now == 0.5
