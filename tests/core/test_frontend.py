"""Tests for the Section 6.1 front-end manager."""

from __future__ import annotations

from repro.broadcast.osend import OSendBroadcast
from repro.core.commutativity import CommutativitySpec
from repro.core.frontend import FrontEndManager
from repro.net.latency import ConstantLatency, UniformLatency
from tests.conftest import build_group


def spec() -> CommutativitySpec:
    return CommutativitySpec(commutative_ops={"inc", "dec"})


class TestOrderingRules:
    def test_first_commutative_request_is_unconstrained(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        frontend = FrontEndManager(stacks["a"], spec())
        label = frontend.request("inc")
        scheduler.run()
        assert stacks["a"].graph.ancestors_of(label) == frozenset()

    def test_commutative_requests_hang_off_last_sync(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        frontend = FrontEndManager(stacks["a"], spec())
        sync = frontend.request("rd")
        c1 = frontend.request("inc")
        c2 = frontend.request("dec")
        scheduler.run()
        graph = stacks["b"].graph
        assert graph.ancestors_of(c1) == frozenset({sync})
        assert graph.ancestors_of(c2) == frozenset({sync})
        assert graph.concurrent(c1, c2)

    def test_sync_request_and_depends_on_open_commutative_set(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        frontend = FrontEndManager(stacks["a"], spec())
        c1 = frontend.request("inc")
        c2 = frontend.request("dec")
        sync = frontend.request("rd")
        scheduler.run()
        assert stacks["b"].graph.ancestors_of(sync) == frozenset({c1, c2})

    def test_sync_without_open_set_chains_to_previous_sync(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        frontend = FrontEndManager(stacks["a"], spec())
        first = frontend.request("rd")
        second = frontend.request("rd")
        scheduler.run()
        assert stacks["b"].graph.ancestors_of(second) == frozenset({first})

    def test_full_cycle_shape_matches_section_6_1(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        frontend = FrontEndManager(stacks["a"], spec())
        nc0 = frontend.request("rd")
        cs = [frontend.request("inc") for _ in range(3)]
        nc1 = frontend.request("rd")
        scheduler.run()
        graph = stacks["c"].graph
        for c in cs:
            assert graph.ancestors_of(c) == frozenset({nc0})
        # The closing sync AND-depends on the commutative set plus the
        # anchor (the anchor edge is redundant here but required when the
        # anchor was installed by a remote manager).
        assert graph.ancestors_of(nc1) == frozenset(set(cs) | {nc0})
        # Transitive reduction recovers the paper's minimal picture.
        reduced = graph.transitive_reduction()
        assert reduced.ancestors_of(nc1) == frozenset(cs)

    def test_counters(self):
        _, __, stacks = build_group(OSendBroadcast)
        frontend = FrontEndManager(stacks["a"], spec())
        frontend.request("inc")
        frontend.request("rd")
        assert frontend.requests_sent == 2
        assert frontend.cycles_opened == 1


class TestRemoteTracking:
    def test_remote_sync_becomes_anchor(self):
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=ConstantLatency(0.5)
        )
        fe_a = FrontEndManager(stacks["a"], spec())
        fe_b = FrontEndManager(stacks["b"], spec())
        sync = fe_a.request("rd")
        scheduler.run()
        label = fe_b.request("inc")
        scheduler.run()
        assert stacks["c"].graph.ancestors_of(label) == frozenset({sync})
        assert fe_b.last_sync_label == sync

    def test_remote_commutatives_joined_into_next_sync(self):
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=ConstantLatency(0.5)
        )
        fe_a = FrontEndManager(stacks["a"], spec())
        fe_b = FrontEndManager(stacks["b"], spec())
        c_remote = fe_a.request("inc")
        scheduler.run()
        c_local = fe_b.request("inc")
        sync = fe_b.request("rd")
        scheduler.run()
        ancestors = stacks["c"].graph.ancestors_of(sync)
        assert ancestors == frozenset({c_remote, c_local})

    def test_covered_commutatives_dropped_after_remote_sync(self):
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=ConstantLatency(0.5)
        )
        fe_a = FrontEndManager(stacks["a"], spec())
        fe_b = FrontEndManager(stacks["b"], spec())
        c1 = fe_a.request("inc")
        scheduler.run()
        # b knows c1; a closes the cycle with a sync covering c1.
        sync = fe_a.request("rd")
        scheduler.run()
        assert fe_b.open_commutative_labels == []
        assert fe_b.last_sync_label == sync
