"""Tests for application state machines."""

from __future__ import annotations

import pytest

from repro.core.state_machine import (
    StateMachine,
    counter_machine,
    registry_machine,
)
from repro.errors import ProtocolError
from repro.types import Message, MessageId


def msg(op: str, payload=None, seqno: int = 0) -> Message:
    return Message(MessageId("t", seqno), op, payload)


class TestApply:
    def test_counter_transitions(self):
        machine = counter_machine()
        state = machine.apply(0, msg("inc"))
        state = machine.apply(state, msg("inc"))
        state = machine.apply(state, msg("dec"))
        assert state == 1

    def test_counter_amounts(self):
        machine = counter_machine()
        assert machine.apply(0, msg("inc", {"amount": 5})) == 5
        assert machine.apply(0, msg("dec", {"amount": 3})) == -3

    def test_read_is_identity(self):
        machine = counter_machine()
        assert machine.apply(42, msg("rd")) == 42

    def test_unknown_operation_strict(self):
        machine = counter_machine()
        with pytest.raises(ProtocolError):
            machine.apply(0, msg("unknown"))

    def test_unknown_operation_lenient(self):
        machine = StateMachine(0, {"inc": lambda s, m: s + 1}, strict=False)
        assert machine.apply(5, msg("unknown")) == 5

    def test_run_folds_from_initial(self):
        machine = counter_machine(initial=10)
        final = machine.run([msg("inc"), msg("inc"), msg("dec")])
        assert final == 11

    def test_run_from_explicit_state(self):
        machine = counter_machine()
        assert machine.run([msg("inc")], state=100) == 101

    def test_operations_and_handles(self):
        machine = counter_machine()
        assert machine.operations() == frozenset({"inc", "dec", "rd"})
        assert machine.handles("inc")
        assert not machine.handles("put")


class TestRegistryMachine:
    def test_update_then_query(self):
        machine = registry_machine()
        state = machine.apply(
            machine.initial_state, msg("upd", {"name": "www", "value": "1.1.1.1"})
        )
        assert dict(state)["www"] == "1.1.1.1"
        assert machine.apply(state, msg("qry", {"name": "www"})) == state

    def test_update_overwrites(self):
        machine = registry_machine()
        state = machine.apply(
            machine.initial_state, msg("upd", {"name": "n", "value": "v1"})
        )
        state = machine.apply(state, msg("upd", {"name": "n", "value": "v2"}, 1))
        assert dict(state)["n"] == "v2"

    def test_states_are_value_comparable(self):
        machine = registry_machine()
        s1 = machine.apply(
            machine.initial_state, msg("upd", {"name": "n", "value": "v"})
        )
        s2 = machine.apply(
            machine.initial_state, msg("upd", {"name": "n", "value": "v"}, 1)
        )
        assert s1 == s2
