"""Replicas over total-order protocols: VAL(m) equals the live state.

Protocols without a dependency graph agree at *every* message, so the
replica's stable state at a sync point is simply its live state there —
and still identical across members.
"""

from __future__ import annotations

import pytest

from repro.analysis.convergence import stable_points_agree
from repro.core.access_protocol import TotalOrderSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.net.latency import UniformLatency


def payload(amount: int = 1) -> dict:
    return {"item": "x", "amount": amount}


class TestTotalOrderStablePoints:
    @pytest.mark.parametrize("engine", ["sequencer", "lamport"])
    def test_sync_points_agree(self, engine):
        system = TotalOrderSystem(
            ["a", "b", "c"], counter_machine, counter_spec(),
            engine=engine, latency=UniformLatency(0.2, 2.0), seed=5,
        )
        system.request("a", "inc", payload())
        system.request("b", "inc", payload(2))
        system.request("c", "rd", payload())
        system.request("a", "dec", payload())
        system.request("b", "rd", payload())
        system.run()
        assert stable_points_agree(system.replicas) == []
        counts = {r.stable_point_count for r in system.replicas.values()}
        assert counts == {2}

    def test_stable_values_reflect_total_order_prefix(self):
        system = TotalOrderSystem(
            ["a", "b"], counter_machine, counter_spec(),
            engine="sequencer", latency=UniformLatency(0.2, 2.0), seed=6,
        )
        system.request("a", "inc", payload(10))
        system.request("b", "rd", payload())
        system.run()
        # Exactly one sync point; its agreed value covers the inc iff the
        # total order placed the inc first — either way, identical at
        # both replicas.
        values = {r.stable_state_at(0) for r in system.replicas.values()}
        assert len(values) == 1
        assert values <= {0, 10}

    @pytest.mark.parametrize("engine", ["sequencer", "lamport"])
    def test_deferred_reads_agree(self, engine):
        system = TotalOrderSystem(
            ["a", "b", "c"], counter_machine, counter_spec(),
            engine=engine, latency=UniformLatency(0.2, 2.0), seed=7,
        )
        results = []
        for member, replica in system.replicas.items():
            replica.read_at_next_stable_point(
                lambda value, point, member=member: results.append(
                    (member, value)
                )
            )
        system.request("a", "inc", payload(3))
        system.request("b", "rd", payload())
        system.run()
        assert len(results) == 3
        assert len({value for _, value in results}) == 1
