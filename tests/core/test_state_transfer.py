"""Tests for late-joiner state transfer."""

from __future__ import annotations

import pytest

from repro.broadcast.osend import OSendBroadcast
from repro.core.commutativity import counter_spec
from repro.core.replica import Replica
from repro.core.state_machine import counter_machine
from repro.core.state_transfer import (
    Snapshot,
    bootstrap_joiner,
    install_snapshot,
    replayable_envelopes,
    take_snapshot,
)
from repro.errors import ProtocolError
from repro.group.membership import GroupMembership
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


def payload() -> dict:
    return {"item": "x", "amount": 1}


def make_system(members=("a", "b")):
    scheduler = Scheduler()
    net = Network(
        scheduler, latency=UniformLatency(0.2, 1.5), rng=RngRegistry(0)
    )
    membership = GroupMembership(list(members))
    replicas = {}
    for member in members:
        protocol = net.register(OSendBroadcast(member, membership))
        replicas[member] = Replica(protocol, counter_machine(), counter_spec())
    return scheduler, net, membership, replicas


class TestSnapshots:
    def test_snapshot_at_stable_point(self):
        scheduler, _, __, replicas = make_system()
        protocol = replicas["a"].protocol
        c1 = protocol.osend("inc", payload())
        sync = protocol.osend("rd", payload(), occurs_after=c1)
        scheduler.run()
        snapshot = take_snapshot(replicas["a"])
        assert snapshot.state == 1
        assert snapshot.covered == frozenset({c1, sync})
        assert snapshot.stable_index == 0

    def test_snapshot_requires_stable_point(self):
        scheduler, _, __, replicas = make_system()
        replicas["a"].protocol.osend("inc", payload())
        scheduler.run()
        with pytest.raises(ProtocolError):
            take_snapshot(replicas["a"])

    def test_live_snapshot(self):
        scheduler, _, __, replicas = make_system()
        label = replicas["a"].protocol.osend("inc", payload())
        scheduler.run()
        snapshot = take_snapshot(replicas["a"], at_stable_point=False)
        assert snapshot.state == 1
        assert label in snapshot.covered

    def test_replayable_excludes_covered(self):
        scheduler, _, __, replicas = make_system()
        protocol = replicas["a"].protocol
        c1 = protocol.osend("inc", payload())
        sync = protocol.osend("rd", payload(), occurs_after=c1)
        scheduler.run()
        snapshot = take_snapshot(replicas["a"])
        late = protocol.osend("inc", payload(), occurs_after=sync)
        scheduler.run()
        replay = replayable_envelopes(protocol, snapshot)
        assert [e.msg_id for e in replay] == [late]


class TestJoin:
    def _grown_group(self):
        """A 2-member group with history, plus a fresh joiner replica."""
        scheduler, net, membership, replicas = make_system()
        protocol_a = replicas["a"].protocol
        c1 = protocol_a.osend("inc", payload())
        sync = protocol_a.osend("rd", payload(), occurs_after=c1)
        post = protocol_a.osend("inc", payload(), occurs_after=sync)
        scheduler.run()
        membership.join("c")
        joiner_protocol = net.register(OSendBroadcast("c", membership))
        joiner = Replica(joiner_protocol, counter_machine(), counter_spec())
        return scheduler, replicas, joiner, (c1, sync, post)

    def test_bootstrap_matches_group_state(self):
        scheduler, replicas, joiner, labels = self._grown_group()
        bootstrap_joiner(joiner, replicas["a"])
        assert joiner.read_now() == replicas["a"].read_now() == 2

    def test_joiner_processes_future_traffic(self):
        scheduler, replicas, joiner, (c1, sync, post) = self._grown_group()
        bootstrap_joiner(joiner, replicas["a"])
        # New message depending on pre-join history must deliver at joiner.
        replicas["b"].protocol.osend("inc", payload(), occurs_after=post)
        scheduler.run()
        assert joiner.read_now() == replicas["a"].read_now() == 3

    def test_duplicate_covered_messages_discarded(self):
        scheduler, replicas, joiner, (c1, sync, post) = self._grown_group()
        snapshot = bootstrap_joiner(joiner, replicas["a"])
        assert c1 in snapshot.covered
        covered_env = replicas["a"].protocol.envelope_of(c1)
        joiner.protocol.on_receive("a", covered_env)
        assert joiner.read_now() == 2  # unchanged: duplicate dropped

    def test_install_into_dirty_replica_rejected(self):
        scheduler, replicas, joiner, _ = self._grown_group()
        snapshot = take_snapshot(replicas["a"])
        joiner.protocol.osend("inc", payload())
        scheduler.run()
        with pytest.raises(ProtocolError):
            install_snapshot(joiner, snapshot)

    def test_snapshots_from_different_donors_equivalent(self):
        scheduler, replicas, joiner, _ = self._grown_group()
        snap_a = take_snapshot(replicas["a"])
        snap_b = take_snapshot(replicas["b"])
        assert snap_a.state == snap_b.state
        assert snap_a.covered == snap_b.covered
