"""Tests for commutativity specifications."""

from __future__ import annotations

from repro.core.commutativity import (
    CommutativitySpec,
    counter_spec,
    registry_spec,
)
from repro.types import Message, MessageId


def msg(op: str, payload=None, sender: str = "a", seqno: int = 0) -> Message:
    return Message(MessageId(sender, seqno), op, payload)


class TestCategory:
    def test_commutative_category(self):
        spec = CommutativitySpec(commutative_ops={"inc", "dec"})
        assert spec.is_commutative("inc")
        assert spec.is_commutative("dec")
        assert not spec.is_commutative("rd")

    def test_pairwise_from_category(self):
        spec = CommutativitySpec(commutative_ops={"inc", "dec"})
        assert spec.commute(msg("inc"), msg("dec"))
        assert not spec.commute(msg("inc"), msg("rd"))
        assert not spec.commute(msg("rd"), msg("rd"))


class TestItemScoping:
    def test_different_items_commute_regardless_of_category(self):
        spec = CommutativitySpec(
            commutative_ops=set(),
            item_of=lambda m: m.payload["item"],
        )
        a = msg("write", {"item": "x"})
        b = msg("write", {"item": "y"})
        assert spec.commute(a, b)

    def test_same_item_falls_through_to_category(self):
        spec = CommutativitySpec(
            commutative_ops={"inc"},
            item_of=lambda m: m.payload["item"],
        )
        a = msg("inc", {"item": "x"})
        b = msg("inc", {"item": "x"})
        assert spec.commute(a, b)
        c = msg("rd", {"item": "x"})
        assert not spec.commute(a, c)


class TestExtraRule:
    def test_extra_rule_overrides(self):
        spec = CommutativitySpec(
            commutative_ops={"inc"},
            extra_rule=lambda a, b: False,
        )
        assert not spec.commute(msg("inc"), msg("inc"))

    def test_extra_rule_none_falls_through(self):
        spec = CommutativitySpec(
            commutative_ops={"inc"},
            extra_rule=lambda a, b: None,
        )
        assert spec.commute(msg("inc"), msg("inc"))


class TestPaperSpecs:
    def test_counter_spec_matches_section_2_2(self):
        spec = counter_spec()
        inc = msg("inc", {"item": "x"})
        dec = msg("dec", {"item": "x"})
        rd = msg("rd", {"item": "x"})
        assert spec.commute(inc, dec)
        assert not spec.commute(inc, rd)
        assert not spec.commute(dec, rd)

    def test_counter_spec_item_scoping(self):
        spec = counter_spec()
        rd_x = msg("rd", {"item": "x"})
        inc_y = msg("inc", {"item": "y"})
        assert spec.commute(rd_x, inc_y)

    def test_registry_spec_matches_section_5_2(self):
        spec = registry_spec()
        q1 = msg("qry", {"name": "www"})
        q2 = msg("qry", {"name": "www"})
        upd = msg("upd", {"name": "www", "value": "1"})
        assert spec.commute(q1, q2)  # queries are commutative
        assert not spec.commute(q1, upd)
        assert not spec.commute(upd, upd)
