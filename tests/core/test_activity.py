"""Tests for causal activities."""

from __future__ import annotations

import pytest

from repro.core.activity import CausalActivity
from repro.core.commutativity import CommutativitySpec
from repro.core.state_machine import counter_machine
from repro.errors import DependencyError
from repro.graph.depgraph import DependencyGraph
from repro.types import Message, MessageId


def mid(name: str) -> MessageId:
    return MessageId(name, 0)


def cycle_messages(ops: dict[str, str]) -> dict[MessageId, Message]:
    messages = {mid("open"): Message(mid("open"), "inc")}
    for name, op in ops.items():
        messages[mid(name)] = Message(mid(name), op)
    messages[mid("close")] = Message(mid("close"), "rd")
    return messages


class TestConstruction:
    def test_cycle_shape(self):
        activity = CausalActivity.cycle(
            mid("open"), [mid("m1"), mid("m2")], mid("close")
        )
        graph = activity.graph
        assert graph.ancestors_of(mid("m1")) == frozenset({mid("open")})
        assert graph.ancestors_of(mid("close")) == frozenset(
            {mid("m1"), mid("m2")}
        )
        assert graph.concurrent(mid("m1"), mid("m2"))

    def test_cycle_without_closing(self):
        activity = CausalActivity.cycle(mid("open"), [mid("m1")])
        assert mid("m1") in activity
        assert len(activity) == 2

    def test_empty_concurrent_set_chains_closing_to_opening(self):
        activity = CausalActivity.cycle(mid("open"), [], mid("close"))
        assert activity.graph.ancestors_of(mid("close")) == frozenset(
            {mid("open")}
        )

    def test_from_relations(self):
        activity = CausalActivity.from_relations(
            [mid("a"), mid("b"), mid("c")],
            [(mid("a"), mid("b")), (mid("b"), mid("c"))],
        )
        assert activity.graph.precedes(mid("a"), mid("c"))

    def test_from_relations_rejects_unknown_labels(self):
        with pytest.raises(DependencyError):
            CausalActivity.from_relations(
                [mid("a")], [(mid("a"), mid("ghost"))]
            )

    def test_from_relations_rejects_cycles(self):
        with pytest.raises(DependencyError):
            CausalActivity.from_relations(
                [mid("a"), mid("b")],
                [(mid("a"), mid("b")), (mid("b"), mid("a"))],
            )

    def test_dangling_graph_rejected(self):
        graph = DependencyGraph()
        graph.add(mid("b"), mid("outside"))
        with pytest.raises(DependencyError):
            CausalActivity(graph)


class TestCompletion:
    def test_is_complete(self):
        activity = CausalActivity.cycle(mid("open"), [mid("m1")], mid("close"))
        assert not activity.is_complete({mid("open")})
        assert activity.is_complete({mid("open"), mid("m1"), mid("close")})

    def test_allowed_sequences_count(self):
        activity = CausalActivity.cycle(
            mid("open"), [mid("m1"), mid("m2"), mid("m3")], mid("close")
        )
        # 3 concurrent middles: 3! orderings.
        assert len(activity.allowed_sequences()) == 6


class TestStability:
    def test_commuting_cycle_is_stable_both_ways(self):
        activity = CausalActivity.cycle(
            mid("open"), [mid("m1"), mid("m2")], mid("close")
        )
        messages = cycle_messages({"m1": "inc", "m2": "dec"})
        machine = counter_machine()
        spec = CommutativitySpec(commutative_ops={"inc", "dec"})

        stable, final = activity.is_stable_exhaustive(messages, machine)
        assert stable and final == 1

        guaranteed, violations = activity.is_stable_static(messages, spec)
        assert guaranteed and not violations

    def test_non_commuting_cycle_flagged_statically(self):
        activity = CausalActivity.cycle(
            mid("open"), [mid("m1"), mid("m2")], mid("close")
        )
        messages = cycle_messages({"m1": "inc", "m2": "rd"})
        spec = CommutativitySpec(commutative_ops={"inc", "dec"})
        guaranteed, violations = activity.is_stable_static(messages, spec)
        assert not guaranteed
        assert violations == [(mid("m1"), mid("m2"))]

    def test_exhaustive_check_can_pass_where_static_fails(self):
        """Static commutativity is sufficient, not necessary."""
        activity = CausalActivity.cycle(
            mid("open"), [mid("m1"), mid("m2")], mid("close")
        )
        # Two reads are 'non-commutative' by category but trivially
        # transition-preserving.
        messages = cycle_messages({"m1": "rd", "m2": "rd"})
        machine = counter_machine()
        spec = CommutativitySpec(commutative_ops={"inc", "dec"})
        stable, _ = activity.is_stable_exhaustive(messages, machine)
        guaranteed, _ = activity.is_stable_static(messages, spec)
        assert stable and not guaranteed
