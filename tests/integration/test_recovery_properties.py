"""Property-based tests for the recovery + GC composition.

Random workloads over random lossy networks: recovery must restore full
causal delivery, GC must never reclaim anything a member still needs,
and the combination must preserve every safety invariant.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.causal_check import verify_against_graph
from repro.broadcast.gc import track_group
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.recovery import protect_group
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

MEMBERS = ("a", "b", "c")


def build(drop: float, seed: int, with_gc: bool = False):
    scheduler = Scheduler()
    network = Network(
        scheduler,
        latency=UniformLatency(0.2, 1.5),
        faults=FaultPlan(drop_probability=drop),
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(MEMBERS)
    stacks = {
        m: network.register(OSendBroadcast(m, membership)) for m in MEMBERS
    }
    agents = protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
    trackers = track_group(stacks) if with_gc else {}
    return scheduler, stacks, agents, trackers


def settle(scheduler, stacks, agents, count: int, rounds: int = 60) -> None:
    scheduler.run(max_events=1_000_000)
    for _ in range(rounds):
        if all(len(s.delivered) == count for s in stacks.values()):
            return
        for agent in agents.values():
            agent.anti_entropy_round()
        scheduler.run(max_events=1_000_000)


class TestRecoveryProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 50_000),
        drop=st.floats(0.0, 0.35),
        data=st.data(),
    )
    def test_random_graphs_fully_recover_causally(self, seed, drop, data):
        scheduler, stacks, agents, _ = build(drop, seed)
        issued: list = []
        count = data.draw(st.integers(2, 8), label="count")
        for i in range(count):
            sender = data.draw(st.sampled_from(MEMBERS), label=f"s{i}")
            deps = (
                data.draw(
                    st.sets(st.sampled_from(issued), max_size=2),
                    label=f"d{i}",
                )
                if issued
                else set()
            )
            issued.append(
                stacks[sender].osend("op", occurs_after=frozenset(deps))
            )
        settle(scheduler, stacks, agents, count)
        sequences = {m: s.delivered for m, s in stacks.items()}
        for sequence in sequences.values():
            assert len(sequence) == count
        reference = stacks[MEMBERS[0]].graph
        assert verify_against_graph(reference, sequences) == []
        # No double delivery ever.
        for sequence in sequences.values():
            assert len(set(sequence)) == len(sequence)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50_000), drop=st.floats(0.0, 0.3))
    def test_gc_never_breaks_recovery(self, seed, drop):
        """Interleave gossip with repair: compaction must only ever drop
        envelopes everyone already has, so recovery still completes."""
        scheduler, stacks, agents, trackers = build(drop, seed, with_gc=True)
        previous = None
        count = 9
        for i in range(count):
            previous = stacks[MEMBERS[i % 3]].osend(
                "op", occurs_after=previous
            )
            if i % 3 == 2:
                for tracker in trackers.values():
                    tracker.gossip_round()
        scheduler.run(max_events=1_000_000)
        for _ in range(60):
            if all(len(s.delivered) == count for s in stacks.values()):
                break
            for agent in agents.values():
                agent.anti_entropy_round()
            for tracker in trackers.values():
                tracker.gossip_round()
            scheduler.run(max_events=1_000_000)
        for stack in stacks.values():
            assert len(stack.delivered) == count
        # Whatever was reclaimed was genuinely stable: every member ended
        # with the full history regardless.
        total_reclaimed = sum(
            t.envelopes_reclaimed for t in trackers.values()
        )
        assert total_reclaimed >= 0
