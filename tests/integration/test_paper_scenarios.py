"""End-to-end reproductions of the paper's figures and worked examples.

Each test builds the exact scenario a figure or section describes and
asserts the behaviour the paper claims.
"""

from __future__ import annotations

import pytest

from repro.analysis.causal_check import verify_against_graph
from repro.analysis.convergence import (
    same_message_sets_between_sync_points,
    stable_points_agree,
    states_agree,
)
from repro.apps.card_game import CardGame
from repro.apps.lock_service import LockService
from repro.apps.name_service import NameServiceSystem
from repro.broadcast.osend import OSendBroadcast
from repro.core.access_protocol import StablePointSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.net.latency import UniformLatency
from tests.conftest import build_group


def payload() -> dict:
    return {"item": "x", "amount": 1}


class TestFigure1SharedDataAccess:
    """Figure 1: every data access message is seen by all entities."""

    def test_every_access_reaches_every_entity(self):
        system = StablePointSystem(
            ["a1", "a2", "a3", "a4"],
            counter_machine,
            counter_spec(),
            latency=UniformLatency(0.2, 2.0),
            seed=42,
        )
        labels = [
            system.request("a1", "inc", payload()),
            system.request("a2", "dec", payload()),
            system.request("a3", "inc", payload()),
        ]
        system.run()
        for protocol in system.protocols.values():
            assert set(protocol.delivered) >= set(labels)
        assert states_agree(system.states()) == []


class TestFigure2CausalScenario:
    """Figure 2: ``R(M) = mk ≺ ‖{mi, mj}`` — divergence mid-activity,
    agreement at the synchronizing message."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_scenario_shape(self, seed):
        scheduler, _, stacks = build_group(
            OSendBroadcast,
            members=("ai", "aj", "ak"),
            latency=UniformLatency(0.2, 3.0),
            seed=seed,
        )
        mk = stacks["ak"].osend("mk")
        mi = stacks["ai"].osend("mi", occurs_after=mk)
        mj = stacks["aj"].osend("mj", occurs_after=mk)
        # The synchronizing message: ‖{mi, mj} ≺ ml.
        ml = stacks["ai"].osend("ml", occurs_after=[mi, mj])
        scheduler.run()
        sequences = {m: s.delivered for m, s in stacks.items()}
        # 1. mk delivered first everywhere; ml last everywhere.
        for sequence in sequences.values():
            assert sequence[0] == mk
            assert sequence[-1] == ml
        # 2. The declared graph is respected everywhere.
        graph = stacks["ai"].graph
        assert verify_against_graph(graph, sequences) == []
        # 3. Every member saw the same message *set* at the sync point
        #    even if mi/mj arrived in different orders.
        assert (
            same_message_sets_between_sync_points(sequences, [ml]) == []
        )

    def test_interleavings_do_differ_for_some_seed(self):
        """The concurrency is real: some seed shows different mi/mj orders."""
        observed_orders = set()
        for seed in range(10):
            scheduler, _, stacks = build_group(
                OSendBroadcast,
                members=("ai", "aj", "ak"),
                latency=UniformLatency(0.2, 3.0),
                seed=seed,
            )
            mk = stacks["ak"].osend("mk")
            mi = stacks["ai"].osend("mi", occurs_after=mk)
            mj = stacks["aj"].osend("mj", occurs_after=mk)
            scheduler.run()
            for stack in stacks.values():
                pair_order = tuple(
                    l for l in stack.delivered if l in (mi, mj)
                )
                observed_orders.add(pair_order)
        assert len(observed_orders) == 2  # both (mi,mj) and (mj,mi) occur


class TestSection22IncDecRead:
    """Section 2.2: ‖{inc, dec} ≺ rd guarantees agreement at the read."""

    @pytest.mark.parametrize("seed", range(5))
    def test_read_value_agreed_at_every_member(self, seed):
        system = StablePointSystem(
            ["s1", "s2", "s3"],
            counter_machine,
            counter_spec(),
            latency=UniformLatency(0.2, 2.5),
            seed=seed,
        )
        system.request("s1", "inc", payload())
        system.request("s1", "dec", payload())
        system.request("s1", "inc", payload())
        system.request("s1", "rd", payload())
        system.run()
        assert stable_points_agree(system.replicas) == []
        values = {
            r.stable_state_at(0) for r in system.replicas.values()
        }
        assert values == {1}


class TestSection52NameService:
    """Section 5.2: app-specific protocol detects stale queries."""

    def test_inconsistent_query_is_always_flagged(self):
        flagged_covers_inconsistent = []
        for seed in range(20):
            system = NameServiceSystem(
                ["n1", "n2", "n3"],
                engine="causal",
                latency=UniformLatency(0.1, 4.0),
                seed=seed,
            )
            system.members["n1"].update("host", "v0")
            system.members["n2"].query("host")
            system.members["n3"].update("host", "v1")
            system.members["n2"].query("host")
            system.run()
            inconsistent = set(system.inconsistent_queries())
            flagged = set(system.flagged_queries())
            flagged_covers_inconsistent.append(inconsistent <= flagged)
        assert all(flagged_covers_inconsistent)


class TestSection51CardGame:
    """Section 5.1: relaxed turn ordering yields higher concurrency."""

    def test_concurrency_strictly_increases_with_dependency_distance(self):
        degrees = []
        for distance in (1, 2, 3):
            game = CardGame(
                ["p0", "p1", "p2", "p3"],
                rounds=3,
                dependency_distance=distance,
                latency=UniformLatency(0.2, 1.0),
                seed=5,
            )
            game.play()
            assert game.all_windows_converged()
            degrees.append(game.concurrency_degree())
        assert degrees[0] < degrees[1] < degrees[2]


class TestFigure5LockArbitration:
    """Figure 5 / Section 6.2: LOCK/TFR consensus over total order."""

    @pytest.mark.parametrize("seed", range(5))
    def test_three_member_scenario(self, seed):
        service = LockService(
            ["A", "B", "C"],
            cycles=2,
            access_time=0.5,
            latency=UniformLatency(0.2, 1.5),
            seed=seed,
        )
        service.run()
        assert service.consensus_reached()
        assert service.total_acquisitions() == 6
        # Exactly one holder at a time: acquisition times strictly ordered.
        times = [t for _, __, t in service.acquisition_times]
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
