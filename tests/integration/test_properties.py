"""System-level property-based tests.

These drive whole systems with randomized workloads and assert the
paper's invariants: causal delivery, stable-point agreement, convergence.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.causal_check import verify_against_graph
from repro.analysis.convergence import stable_points_agree, states_agree
from repro.core.access_protocol import StablePointSystem, TotalOrderSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.net.latency import UniformLatency
from repro.workload.generators import WorkloadDriver, cycle_schedule

MEMBERS = ["a", "b", "c"]


def payload_factory(op: str, index: int) -> dict:
    return {"item": "x", "amount": 1}


def run_stable_point_system(seed: int, cycles: int, f: int) -> StablePointSystem:
    system = StablePointSystem(
        MEMBERS,
        counter_machine,
        counter_spec(),
        latency=UniformLatency(0.1, 3.0),
        seed=seed,
    )
    schedule = cycle_schedule(
        MEMBERS,
        ["inc", "dec"],
        "rd",
        cycles=cycles,
        f=f,
        rng=random.Random(seed),
        payload_factory=payload_factory,
        issuer="a",
    )
    WorkloadDriver(system.scheduler, system.request, schedule)
    system.run()
    return system


class TestStablePointInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        cycles=st.integers(1, 4),
        f=st.integers(0, 6),
    )
    def test_agreement_at_every_stable_point(self, seed, cycles, f):
        system = run_stable_point_system(seed, cycles, f)
        assert stable_points_agree(system.replicas) == []
        assert states_agree(system.states()) == []
        counts = {r.stable_point_count for r in system.replicas.values()}
        assert counts == {cycles}

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_causal_delivery_always_holds(self, seed):
        system = run_stable_point_system(seed, cycles=3, f=4)
        reference = system.protocols["a"].graph
        sequences = system.delivered_sequences()
        assert verify_against_graph(reference, sequences) == []

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000), f=st.integers(0, 6))
    def test_stable_values_match_workload_arithmetic(self, seed, f):
        """The agreed value at the final stable point is the fold of all
        cycle operations — same number at every member, every seed."""
        system = run_stable_point_system(seed, cycles=2, f=f)
        finals = {
            r.stable_state_at(1) for r in system.replicas.values()
        }
        assert len(finals) == 1


class TestTotalOrderInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        engine=st.sampled_from(["sequencer", "lamport"]),
        sends=st.lists(st.sampled_from(MEMBERS), min_size=1, max_size=10),
    )
    def test_identical_delivery_order_and_state(self, seed, engine, sends):
        system = TotalOrderSystem(
            MEMBERS,
            counter_machine,
            counter_spec(),
            engine=engine,
            latency=UniformLatency(0.1, 3.0),
            seed=seed,
        )
        for sender in sends:
            system.request(sender, "inc", {"item": "x", "amount": 1})
        system.run()
        assert states_agree(system.states()) == []
        assert set(system.states().values()) == {len(sends)}


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_same_seed_reproduces_run_exactly(self, seed):
        first = run_stable_point_system(seed, cycles=2, f=3)
        second = run_stable_point_system(seed, cycles=2, f=3)
        assert first.delivered_sequences() == second.delivered_sequences()
        assert first.states() == second.states()
        assert (
            first.scheduler.events_processed
            == second.scheduler.events_processed
        )
