"""Whole-stack integration: loss + recovery + GC + join + consistency.

One scenario exercising every subsystem together, the way a deployment
would run them: a lossy network, the §6.1 access protocol, the recovery
layer keeping it live, stability tracking reclaiming stores, a member
joining mid-run via state transfer, and the full battery of consistency
checks at the end.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.causal_check import verify_against_graph
from repro.analysis.convergence import stable_points_agree, states_agree
from repro.broadcast.gc import track_group
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.recovery import protect_group
from repro.core.commutativity import counter_spec
from repro.core.frontend import FrontEndManager
from repro.core.replica import Replica
from repro.core.state_machine import counter_machine
from repro.core.state_transfer import bootstrap_joiner
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


class FullSystem:
    """Harness wiring every layer together on a lossy network."""

    def __init__(self, drop: float = 0.15, seed: int = 0) -> None:
        self.scheduler = Scheduler()
        self.faults = FaultPlan(drop_probability=drop)
        self.network = Network(
            self.scheduler,
            latency=UniformLatency(0.2, 1.5),
            faults=self.faults,
            rng=RngRegistry(seed),
        )
        self.membership = GroupMembership(["a", "b", "c"])
        self.spec = counter_spec()
        self.stacks = {}
        self.replicas = {}
        self.frontends = {}
        for member in ("a", "b", "c"):
            self._add_member(member)
        self.agents = protect_group(
            self.stacks, scan_interval=1.0, nack_backoff=2.0
        )
        self.trackers = track_group(self.stacks)

    def _add_member(self, member: str):
        stack = self.network.register(OSendBroadcast(member, self.membership))
        self.stacks[member] = stack
        self.replicas[member] = Replica(stack, counter_machine(), self.spec)
        self.frontends[member] = FrontEndManager(stack, self.spec)
        return stack

    def drive_cycles(self, cycles: int, f: int, rng: random.Random) -> int:
        """Issue §6.1 cycles through random front-ends; returns requests."""
        issued = 0
        for _ in range(cycles):
            for _ in range(f):
                member = rng.choice(list(self.frontends))
                self.frontends[member].request(
                    rng.choice(["inc", "dec"]), {"item": "x", "amount": 1}
                )
                issued += 1
                self.scheduler.run_until(self.scheduler.now + 0.5)
            self.frontends["a"].request("rd", {"item": "x"})
            issued += 1
            self.scheduler.run_until(self.scheduler.now + 2.0)
        return issued

    def settle(self, expected: int, max_rounds: int = 40) -> None:
        """Drain, anti-entropy until everyone has everything."""
        self.scheduler.run(max_events=500_000)
        for _ in range(max_rounds):
            if all(
                len(s.delivered) >= expected for s in self.stacks.values()
            ):
                return
            for agent in self.agents.values():
                agent.anti_entropy_round()
            self.scheduler.run(max_events=500_000)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_lossy_full_stack_converges(seed):
    system = FullSystem(drop=0.15, seed=seed)
    rng = random.Random(seed)
    issued = system.drive_cycles(cycles=3, f=4, rng=rng)
    system.settle(expected=issued)

    # Everyone delivered everything, causally.
    sequences = {m: s.delivered for m, s in system.stacks.items()}
    assert all(len(seq) == issued for seq in sequences.values())
    reference = system.stacks["a"].graph
    assert verify_against_graph(reference, sequences) == []

    # Consistency: live convergence and stable-point agreement.
    states = {m: r.read_now() for m, r in system.replicas.items()}
    assert states_agree(states) == []
    assert stable_points_agree(system.replicas) == []
    assert all(r.stable_point_count == 3 for r in system.replicas.values())


def test_gc_runs_while_traffic_flows():
    system = FullSystem(drop=0.0, seed=9)
    rng = random.Random(9)
    issued = system.drive_cycles(cycles=2, f=3, rng=rng)
    system.settle(expected=issued)
    # Gossip twice so every member knows every member's prefixes.
    for _ in range(2):
        for tracker in system.trackers.values():
            tracker.gossip_round()
        system.scheduler.run()
    for tracker in system.trackers.values():
        assert tracker.store_size == 0
        assert tracker.envelopes_reclaimed >= issued


def test_late_joiner_full_flow():
    system = FullSystem(drop=0.0, seed=4)
    rng = random.Random(4)
    issued = system.drive_cycles(cycles=2, f=3, rng=rng)
    system.settle(expected=issued)

    # d joins: new view, snapshot from a, replay, then more traffic.
    system.membership.join("d")
    joiner_stack = system.network.register(
        OSendBroadcast("d", system.membership)
    )
    joiner = Replica(joiner_stack, counter_machine(), system.spec)
    snapshot = bootstrap_joiner(joiner, system.replicas["a"])
    assert snapshot.covered
    assert joiner.read_now() == system.replicas["a"].read_now()

    system.frontends["d"] = FrontEndManager(joiner_stack, system.spec)
    system.replicas["d"] = joiner
    system.stacks["d"] = joiner_stack
    more = system.drive_cycles(cycles=1, f=2, rng=rng)
    system.scheduler.run(max_events=500_000)

    states = {m: r.read_now() for m, r in system.replicas.items()}
    assert states_agree(states) == []
    # The joiner delivered all post-join traffic, plus any pre-join
    # messages outside the snapshot's causal cut (replayed by the donor).
    assert len(joiner_stack.delivered) >= more
