"""Fault-injection integration tests.

The ordering protocols must stay *safe* under loss, duplication and
partitions: they may fail to deliver (liveness needs a recovery layer),
but they must never deliver out of causal order or deliver twice.
"""

from __future__ import annotations

from repro.analysis.causal_check import verify_against_graph
from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.osend import OSendBroadcast
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


def faulty_group(protocol_cls, faults: FaultPlan, seed: int = 0):
    scheduler = Scheduler()
    net = Network(
        scheduler,
        latency=UniformLatency(0.2, 2.0),
        faults=faults,
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(["a", "b", "c"])
    stacks = {
        m: net.register(protocol_cls(m, membership)) for m in ("a", "b", "c")
    }
    return scheduler, net, stacks


class TestLossSafety:
    def test_osend_holds_dependents_of_lost_messages(self):
        # Drop everything from the start: only self-deliveries never
        # happen either (self-copy also goes through the lossy network).
        scheduler, _, stacks = faulty_group(
            OSendBroadcast, FaultPlan(drop_probability=1.0)
        )
        m1 = stacks["a"].osend("first")
        stacks["b"].osend("second", occurs_after=m1)
        scheduler.run()
        for stack in stacks.values():
            assert stack.delivered == []

    def test_osend_safety_under_heavy_random_loss(self):
        for seed in range(5):
            scheduler, _, stacks = faulty_group(
                OSendBroadcast, FaultPlan(drop_probability=0.4), seed=seed
            )
            previous = None
            for i in range(8):
                sender = ("a", "b", "c")[i % 3]
                previous = stacks[sender].osend("op", occurs_after=previous)
            scheduler.run()
            # Whatever was delivered respects the graph; prefix property:
            # a chain delivers a prefix at each member.
            for stack in stacks.values():
                sequences = {stack.entity_id: stack.delivered}
                assert verify_against_graph(stack.graph, sequences) == []

    def test_cbcast_never_delivers_causal_gap(self):
        for seed in range(5):
            scheduler, _, stacks = faulty_group(
                CbcastBroadcast, FaultPlan(drop_probability=0.3), seed=seed
            )
            for i in range(9):
                stacks[("a", "b", "c")[i % 3]].bcast("op")
            scheduler.run()
            # Per-sender FIFO must hold in every delivered sequence.
            for stack in stacks.values():
                seen: dict = {}
                for label in stack.delivered:
                    assert label.seqno == seen.get(label.sender, -1) + 1
                    seen[label.sender] = label.seqno


class TestDuplicationSafety:
    def test_no_double_delivery_under_full_duplication(self):
        scheduler, _, stacks = faulty_group(
            OSendBroadcast, FaultPlan(duplicate_probability=1.0)
        )
        for member in ("a", "b", "c"):
            stacks[member].osend("op")
        scheduler.run()
        for stack in stacks.values():
            assert len(stack.delivered) == 3
            assert len(set(stack.delivered)) == 3
            assert stack.duplicates_discarded == 3


class TestPartitionSafety:
    def test_partitioned_member_catches_up_after_heal(self):
        faults = FaultPlan()
        scheduler, _, stacks = faulty_group(OSendBroadcast, faults)
        faults.partition({"a", "b"}, {"c"})
        m1 = stacks["a"].osend("during-partition")
        scheduler.run()
        assert m1 in stacks["b"].delivered
        assert m1 not in stacks["c"].delivered
        # Heal; a later message reaches c but waits for its ancestor,
        # which c never got — demonstrating the hold-back is visible.
        faults.heal()
        m2 = stacks["a"].osend("after-heal", occurs_after=m1)
        scheduler.run()
        assert m2 in stacks["b"].delivered
        assert m2 not in stacks["c"].delivered
        assert stacks["c"].blocking_ancestors(m2) == frozenset({m1})
        # Retransmission (here: the application re-broadcasting) unblocks.
        stacks["a"].network.unicast("a", "c", stacks["a"].delivered_envelopes[-2])
        scheduler.run()
        assert stacks["c"].delivered == [m1, m2]

    def test_majority_side_keeps_working(self):
        faults = FaultPlan()
        scheduler, _, stacks = faulty_group(OSendBroadcast, faults)
        faults.partition({"a", "b"}, {"c"})
        m1 = stacks["a"].osend("op")
        stacks["b"].osend("op", occurs_after=m1)
        scheduler.run()
        assert len(stacks["a"].delivered) == 2
        assert len(stacks["b"].delivered) == 2
        assert stacks["c"].delivered == []
