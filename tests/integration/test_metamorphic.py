"""Metamorphic cross-protocol properties.

Relations that must hold *between* protocols on equivalent workloads:
an ordering protocol configured to its degenerate extreme must behave
like the simpler protocol it degenerates into.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.asend import ASendTotalOrder
from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.fifo import FifoBroadcast
from repro.broadcast.lamport_total import LamportTotalOrder
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.rst import RstBroadcast
from repro.broadcast.sequencer import SequencerTotalOrder
from repro.broadcast.unordered import UnorderedBroadcast
from repro.net.latency import UniformLatency
from tests.conftest import build_group

MEMBERS = ("a", "b", "c")


class TestDegenerateEquivalences:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000), count=st.integers(1, 8))
    def test_fully_chained_osend_is_a_global_total_order(self, seed, count):
        """Declaring a full chain forces identical sequences everywhere."""
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=UniformLatency(0.1, 4.0), seed=seed
        )
        previous = None
        for i in range(count):
            sender = MEMBERS[i % 3]
            previous = stacks[sender].osend("op", occurs_after=previous)
        scheduler.run()
        orders = [s.delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000), count=st.integers(1, 8))
    def test_single_sender_cbcast_equals_fifo(self, seed, count):
        """With one sender, causal order degenerates to FIFO order."""
        results = {}
        for protocol_cls in (CbcastBroadcast, FifoBroadcast):
            scheduler, _, stacks = build_group(
                protocol_cls, latency=UniformLatency(0.1, 4.0), seed=seed
            )
            for _ in range(count):
                stacks["a"].bcast("op")
            scheduler.run()
            results[protocol_cls] = {
                m: s.delivered for m, s in stacks.items()
            }
        assert results[CbcastBroadcast] == results[FifoBroadcast]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000), count=st.integers(1, 8))
    def test_single_sender_rst_equals_fifo(self, seed, count):
        results = {}
        for protocol_cls in (RstBroadcast, FifoBroadcast):
            scheduler, _, stacks = build_group(
                protocol_cls, latency=UniformLatency(0.1, 4.0), seed=seed
            )
            for _ in range(count):
                stacks["b"].bcast("op")
            scheduler.run()
            results[protocol_cls] = {
                m: s.delivered for m, s in stacks.items()
            }
        assert results[RstBroadcast] == results[FifoBroadcast]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5_000), count=st.integers(1, 6))
    def test_asend_unit_epochs_are_a_chain(self, seed, count):
        """Batch size 1 with increasing epochs = one global sequence, in
        epoch order."""
        scheduler, _, stacks = build_group(
            ASendTotalOrder,
            latency=UniformLatency(0.1, 4.0),
            seed=seed,
            expected_per_epoch=1,
        )
        labels = []
        for epoch in range(count):
            sender = MEMBERS[epoch % 3]
            labels.append(stacks[sender].asend("op", epoch=epoch))
        scheduler.run()
        for stack in stacks.values():
            assert stack.delivered == labels


class TestAgreementAcrossEngines:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        sends=st.lists(st.sampled_from(MEMBERS), min_size=1, max_size=8),
    )
    def test_all_total_order_engines_deliver_same_set(self, seed, sends):
        """Different engines may pick different orders, but each is a
        permutation of the same message multiset and internally agreed."""
        for protocol_cls, sender_fn in (
            (SequencerTotalOrder, lambda s: s.bcast("op")),
            (LamportTotalOrder, lambda s: s.total_send("op")),
        ):
            scheduler, _, stacks = build_group(
                protocol_cls, latency=UniformLatency(0.1, 4.0), seed=seed
            )
            for sender in sends:
                sender_fn(stacks[sender])
            scheduler.run()
            orders = [s.app_delivered for s in stacks.values()]
            assert all(order == orders[0] for order in orders)
            assert len(orders[0]) == len(sends)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        sends=st.lists(st.sampled_from(MEMBERS), min_size=1, max_size=8),
    )
    def test_every_protocol_delivers_the_same_message_set(self, seed, sends):
        """Ordering differs; the delivered *set* never does."""
        sets = []
        for protocol_cls in (
            UnorderedBroadcast,
            FifoBroadcast,
            CbcastBroadcast,
            RstBroadcast,
            OSendBroadcast,
        ):
            scheduler, _, stacks = build_group(
                protocol_cls, latency=UniformLatency(0.1, 4.0), seed=seed
            )
            for sender in sends:
                stacks[sender].bcast("op")
            scheduler.run()
            sets.append(frozenset(stacks["c"].delivered))
        assert len(set(sets)) == 1
