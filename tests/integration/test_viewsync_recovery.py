"""View-synchronous changes over a lossy network, repaired by recovery.

The flush protocol waits for hold-back queues to drain and for the
digest union to be delivered; on a lossy network both can stall without
the recovery layer.  With it, the flush completes and view synchrony
still holds.
"""

from __future__ import annotations

import pytest

from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.recovery import protect_group
from repro.group.membership import GroupMembership
from repro.group.view_sync import attach_view_sync
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

MEMBERS = ("a", "b", "c")


def make_cluster(drop: float, seed: int):
    scheduler = Scheduler()
    faults = FaultPlan(drop_probability=drop)
    net = Network(
        scheduler,
        latency=UniformLatency(0.2, 1.2),
        faults=faults,
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(MEMBERS)
    stacks = {
        m: net.register(OSendBroadcast(m, membership)) for m in MEMBERS
    }
    agents = attach_view_sync(stacks)
    recovery = protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
    return scheduler, faults, membership, stacks, agents, recovery


def settle_flush(scheduler, membership, recovery, target_view: int) -> None:
    scheduler.run(max_events=500_000)
    for _ in range(40):
        if membership.view.view_id == target_view:
            return
        for agent in recovery.values():
            agent.anti_entropy_round()
        scheduler.run(max_events=500_000)


class TestViewSyncUnderLoss:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_flush_completes_despite_loss(self, seed):
        scheduler, faults, membership, stacks, agents, recovery = (
            make_cluster(drop=0.2, seed=seed)
        )
        m1 = stacks["a"].osend("op")
        stacks["b"].osend("op", occurs_after=m1)
        agents["a"].propose("leave", "c")
        settle_flush(scheduler, membership, recovery, target_view=1)
        assert membership.view.members == ("a", "b")
        # View synchrony held: survivors flushed the same snapshot.
        assert agents["a"].flush_snapshot == agents["b"].flush_snapshot
        assert m1 in agents["a"].flush_snapshot

    def test_clean_network_flush_is_single_pass(self):
        scheduler, faults, membership, stacks, agents, recovery = (
            make_cluster(drop=0.0, seed=9)
        )
        stacks["a"].osend("op")
        agents["b"].propose("join", "d")
        settle_flush(scheduler, membership, recovery, target_view=1)
        assert "d" in membership.view.members
        assert sum(a.nacks_sent for a in recovery.values()) == 0
