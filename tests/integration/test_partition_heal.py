"""Partition/heal reconciliation: both sides progress, then converge.

A partition splits the group; each side keeps issuing *commutative*
operations (the only kind that can safely proceed without cross-side
coordination).  After the heal, anti-entropy exchanges the missing
traffic and all members converge to the same state — the union of both
sides' work.
"""

from __future__ import annotations

import pytest

from repro.analysis.convergence import states_agree
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.recovery import protect_group
from repro.core.commutativity import counter_spec
from repro.core.replica import Replica
from repro.core.state_machine import counter_machine
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler

MEMBERS = ("a", "b", "c", "d")


def make_cluster(seed: int = 0):
    scheduler = Scheduler()
    faults = FaultPlan()
    net = Network(
        scheduler,
        latency=UniformLatency(0.2, 1.0),
        faults=faults,
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(MEMBERS)
    stacks = {
        m: net.register(OSendBroadcast(m, membership)) for m in MEMBERS
    }
    replicas = {
        m: Replica(stack, counter_machine(), counter_spec())
        for m, stack in stacks.items()
    }
    agents = protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
    return scheduler, faults, stacks, replicas, agents


def payload(amount: int = 1) -> dict:
    return {"item": "x", "amount": amount}


class TestPartitionHeal:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_both_sides_work_then_converge(self, seed):
        scheduler, faults, stacks, replicas, agents = make_cluster(seed)
        faults.partition({"a", "b"}, {"c", "d"})

        # Each side increments independently during the partition.
        for _ in range(3):
            stacks["a"].osend("inc", payload())
            stacks["c"].osend("inc", payload())
        scheduler.run(max_events=200_000)

        # Mid-partition: each side saw only its own work.
        assert replicas["a"].read_now() == 3
        assert replicas["c"].read_now() == 3
        assert states_agree(
            {m: r.read_now() for m, r in replicas.items()}
        ) == []  # symmetric sides happen to agree on the count...
        assert set(stacks["a"].delivered) != set(stacks["c"].delivered)

        # Heal and reconcile.
        faults.heal()
        for _ in range(6):
            if all(len(s.delivered) == 6 for s in stacks.values()):
                break
            for agent in agents.values():
                agent.anti_entropy_round()
            scheduler.run(max_events=200_000)

        for stack in stacks.values():
            assert len(stack.delivered) == 6
        states = {m: r.read_now() for m, r in replicas.items()}
        assert states_agree(states) == []
        assert set(states.values()) == {6}  # union of both sides' work

    def test_asymmetric_partition_work(self):
        scheduler, faults, stacks, replicas, agents = make_cluster(seed=7)
        faults.partition({"a", "b"}, {"c", "d"})
        stacks["a"].osend("inc", payload(5))
        stacks["c"].osend("dec", payload(2))
        scheduler.run(max_events=200_000)
        assert replicas["a"].read_now() == 5
        assert replicas["d"].read_now() == -2

        faults.heal()
        for _ in range(6):
            if all(len(s.delivered) == 2 for s in stacks.values()):
                break
            for agent in agents.values():
                agent.anti_entropy_round()
            scheduler.run(max_events=200_000)
        states = {m: r.read_now() for m, r in replicas.items()}
        assert set(states.values()) == {3}  # 5 - 2, everywhere

    def test_sync_point_after_heal_agrees(self):
        """A read issued after reconciliation covers both sides' work."""
        scheduler, faults, stacks, replicas, agents = make_cluster(seed=3)
        faults.partition({"a", "b"}, {"c", "d"})
        i1 = stacks["a"].osend("inc", payload())
        i2 = stacks["c"].osend("inc", payload())
        scheduler.run(max_events=200_000)
        faults.heal()
        for _ in range(6):
            if all(len(s.delivered) == 2 for s in stacks.values()):
                break
            for agent in agents.values():
                agent.anti_entropy_round()
            scheduler.run(max_events=200_000)
        stacks["a"].osend("rd", payload(), occurs_after=[i1, i2])
        scheduler.run(max_events=200_000)
        values = {
            r.stable_state_at(0) for r in replicas.values()
        }
        assert values == {2}
