"""Large-configuration stress tests.

Bigger groups and longer workloads than the unit tests use, verifying
that the invariants hold at scale and the simulation stays tractable.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.causal_check import verify_against_graph
from repro.analysis.convergence import stable_points_agree, states_agree
from repro.broadcast.rst import RstBroadcast
from repro.broadcast.recovery import protect_group
from repro.core.access_protocol import StablePointSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import LognormalLatency, UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.workload.generators import WorkloadDriver, cycle_schedule


class TestScaleStress:
    def test_sixteen_member_cycle_workload(self):
        members = [f"n{i:02d}" for i in range(16)]
        system = StablePointSystem(
            members,
            counter_machine,
            counter_spec(),
            latency=LognormalLatency(median=1.0, sigma=0.6),
            seed=99,
        )
        schedule = cycle_schedule(
            members, ["inc", "dec"], "rd",
            cycles=6, f=10, rng=random.Random(99),
            arrival_rate=3.0,
            payload_factory=lambda op, i: {"item": "x", "amount": 1},
            issuer=members[0],
        )
        WorkloadDriver(system.scheduler, system.request, schedule)
        system.run()
        # All 66 requests delivered at all 16 members, causally.
        for protocol in system.protocols.values():
            assert len(protocol.delivered) == len(schedule)
        reference = system.protocols[members[0]].graph
        assert (
            verify_against_graph(reference, system.delivered_sequences())
            == []
        )
        assert states_agree(system.states()) == []
        assert stable_points_agree(system.replicas) == []
        counts = {r.stable_point_count for r in system.replicas.values()}
        assert counts == {6}

    def test_long_run_event_count_is_linear(self):
        """No hidden quadratic blow-up in the event loop."""
        def events_for(requests: int) -> int:
            members = ["a", "b", "c"]
            system = StablePointSystem(
                members, counter_machine, counter_spec(),
                latency=UniformLatency(0.2, 1.0), seed=5,
            )
            schedule = cycle_schedule(
                members, ["inc"], "rd",
                cycles=requests // 5, f=4, rng=random.Random(5),
                payload_factory=lambda op, i: {"item": "x", "amount": 1},
                issuer="a",
            )
            WorkloadDriver(system.scheduler, system.request, schedule)
            system.run()
            return system.scheduler.events_processed

        small = events_for(50)
        large = events_for(200)
        assert large < small * 6  # ~4x work, comfortably sub-quadratic

    def test_rst_with_recovery_at_scale(self):
        members = [f"r{i}" for i in range(8)]
        scheduler = Scheduler()
        network = Network(
            scheduler,
            latency=UniformLatency(0.2, 1.5),
            faults=FaultPlan(drop_probability=0.15),
            rng=RngRegistry(11),
        )
        membership = GroupMembership(members)
        stacks = {
            m: network.register(RstBroadcast(m, membership)) for m in members
        }
        agents = protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
        count = 24
        for i in range(count):
            stacks[members[i % len(members)]].bcast("op")
        scheduler.run(max_events=2_000_000)
        for _ in range(40):
            if all(len(s.delivered) == count for s in stacks.values()):
                break
            for agent in agents.values():
                agent.anti_entropy_round()
            scheduler.run(max_events=2_000_000)
        for stack in stacks.values():
            assert len(stack.delivered) == count
            # Causal (per-sender FIFO) order held throughout recovery.
            seen: dict = {}
            for label in stack.delivered:
                assert label.seqno == seen.get(label.sender, -1) + 1
                seen[label.sender] = label.seqno
