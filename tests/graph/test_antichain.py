"""Tests for exact maximum-antichain computation."""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.antichain import maximum_antichain, width
from repro.graph.depgraph import DependencyGraph
from repro.types import MessageId


def mid(name: str, seqno: int = 0) -> MessageId:
    return MessageId(name, seqno)


def brute_force_width(graph: DependencyGraph) -> int:
    """Exponential reference implementation for small graphs."""
    nodes = graph.nodes
    best = 0
    for size in range(len(nodes), 0, -1):
        for subset in combinations(nodes, size):
            if all(
                not graph.precedes(a, b) and not graph.precedes(b, a)
                for a, b in combinations(subset, 2)
            ):
                return size
        if best:
            break
    return best


class TestKnownShapes:
    def test_empty_graph(self):
        assert width(DependencyGraph()) == 0
        assert maximum_antichain(DependencyGraph()) == frozenset()

    def test_antichain_graph(self):
        graph = DependencyGraph()
        for name in ("a", "b", "c", "d"):
            graph.add(mid(name))
        assert width(graph) == 4
        assert maximum_antichain(graph) == frozenset(graph.nodes)

    def test_chain_graph(self):
        graph = DependencyGraph()
        previous = None
        for name in ("a", "b", "c"):
            graph.add(mid(name), previous)
            previous = mid(name)
        assert width(graph) == 1
        assert len(maximum_antichain(graph)) == 1

    def test_cycle_activity_width_is_middle_count(self):
        graph = DependencyGraph()
        graph.add(mid("open"))
        middles = [mid(f"m{i}") for i in range(5)]
        for label in middles:
            graph.add(label, mid("open"))
        graph.add(mid("close"), middles)
        assert width(graph) == 5
        assert maximum_antichain(graph) == frozenset(middles)

    def test_two_independent_chains(self):
        graph = DependencyGraph()
        for chain in ("x", "y"):
            previous = None
            for i in range(3):
                graph.add(mid(chain, i), previous)
                previous = mid(chain, i)
        assert width(graph) == 2


@st.composite
def small_dags(draw):
    size = draw(st.integers(1, 6))
    graph = DependencyGraph()
    labels = [mid("n", i) for i in range(size)]
    for index, label in enumerate(labels):
        ancestors = draw(
            st.sets(st.integers(0, max(0, index - 1)), max_size=index)
        )
        graph.add(label, [labels[i] for i in ancestors])
    return graph


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(small_dags())
    def test_width_matches_brute_force(self, graph):
        assert width(graph) == brute_force_width(graph)

    @settings(max_examples=25, deadline=None)
    @given(small_dags())
    def test_maximum_antichain_is_valid_and_maximal(self, graph):
        antichain = maximum_antichain(graph)
        assert len(antichain) == brute_force_width(graph)
        for a in antichain:
            for b in antichain:
                if a != b:
                    assert graph.concurrent(a, b)

    @settings(max_examples=20, deadline=None)
    @given(small_dags())
    def test_greedy_classes_never_beat_exact_width(self, graph):
        greedy_best = max(
            (len(c) for c in graph.concurrency_classes()), default=0
        )
        assert greedy_best <= width(graph)
