"""Tests for Occurs-After predicates."""

from __future__ import annotations

from repro.graph.predicates import OccursAfter
from repro.types import MessageId


def mid(sender: str, seqno: int) -> MessageId:
    return MessageId(sender, seqno)


class TestConstruction:
    def test_null_predicate(self):
        predicate = OccursAfter.null()
        assert predicate.is_null
        assert len(predicate) == 0

    def test_after_none_is_null(self):
        assert OccursAfter.after(None).is_null

    def test_after_single_label(self):
        predicate = OccursAfter.after(mid("a", 0))
        assert predicate.ancestors == frozenset({mid("a", 0)})

    def test_after_iterable(self):
        labels = [mid("a", 0), mid("b", 1)]
        predicate = OccursAfter.after(labels)
        assert predicate.ancestors == frozenset(labels)

    def test_after_deduplicates(self):
        predicate = OccursAfter.after([mid("a", 0), mid("a", 0)])
        assert len(predicate) == 1


class TestSatisfaction:
    def test_null_always_satisfied(self):
        assert OccursAfter.null().satisfied_by(set())

    def test_satisfied_when_all_ancestors_delivered(self):
        predicate = OccursAfter.after([mid("a", 0), mid("b", 0)])
        delivered = {mid("a", 0), mid("b", 0), mid("c", 5)}
        assert predicate.satisfied_by(delivered)

    def test_and_dependency_blocks_on_any_missing(self):
        predicate = OccursAfter.after([mid("a", 0), mid("b", 0)])
        assert not predicate.satisfied_by({mid("a", 0)})

    def test_missing_reports_blockers(self):
        predicate = OccursAfter.after([mid("a", 0), mid("b", 0)])
        assert predicate.missing({mid("a", 0)}) == frozenset({mid("b", 0)})

    def test_missing_empty_when_satisfied(self):
        predicate = OccursAfter.after(mid("a", 0))
        assert predicate.missing({mid("a", 0)}) == frozenset()

    def test_predicates_are_value_objects(self):
        assert OccursAfter.after(mid("a", 0)) == OccursAfter.after(mid("a", 0))
        assert hash(OccursAfter.null()) == hash(OccursAfter.after(None))
