"""The incremental ancestor-closure cache vs. the reference DFS walk.

``DependencyGraph.precedes`` / ``causal_past`` answer from a per-node
closure maintained by ``add``.  These tests pin the cache to the original
DFS semantics — including the subtle cases: dangling ancestors that
materialise *after* descendants referenced them (the closure must
propagate downward), cycles that route through dangling labels, and
diamond-shaped sharing where the same closure arrives via two paths.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.depgraph import DependencyGraph
from repro.types import MessageId


def mid(sender: str, seqno: int = 0) -> MessageId:
    return MessageId(sender, seqno)


def naive_precedes(
    graph: DependencyGraph, earlier: MessageId, later: MessageId
) -> bool:
    """The pre-cache reference implementation: DFS up the ancestor links."""
    if earlier == later:
        return False
    stack = [later]
    seen: Set[MessageId] = set()
    while stack:
        current = stack.pop()
        for ancestor in graph._ancestors.get(current, frozenset()):
            if ancestor == earlier:
                return True
            if ancestor not in seen:
                seen.add(ancestor)
                stack.append(ancestor)
    return False


def naive_causal_past(
    graph: DependencyGraph, msg_id: MessageId
) -> FrozenSet[MessageId]:
    past: Set[MessageId] = set()
    stack = [msg_id]
    while stack:
        current = stack.pop()
        for ancestor in graph._ancestors.get(current, frozenset()):
            if ancestor in graph._ancestors and ancestor not in past:
                past.add(ancestor)
                stack.append(ancestor)
    return frozenset(past)


def assert_cache_matches_naive(graph: DependencyGraph) -> None:
    nodes = graph.nodes
    for a in nodes:
        assert graph.causal_past(a) == naive_causal_past(graph, a)
        for b in nodes:
            assert graph.precedes(a, b) == naive_precedes(graph, a, b), (
                f"precedes({a}, {b}) diverged from the DFS reference"
            )


class TestDanglingMaterialisation:
    def test_closure_propagates_when_dangling_ancestor_arrives(self):
        # c references b before b exists; when b arrives carrying ancestor
        # a, c's closure must gain a (and a's own past) transitively.
        graph = DependencyGraph()
        graph.add(mid("c"), mid("b"))
        graph.add(mid("a"))
        assert not graph.precedes(mid("a"), mid("c"))
        graph.add(mid("b"), mid("a"))
        assert graph.precedes(mid("a"), mid("c"))
        assert graph.causal_past(mid("c")) == {mid("a"), mid("b")}
        assert_cache_matches_naive(graph)

    def test_propagation_reaches_deep_descendants(self):
        graph = DependencyGraph()
        graph.add(mid("d"), mid("c"))
        graph.add(mid("e"), mid("d"))
        graph.add(mid("f"), mid("e"))
        graph.add(mid("root"))
        graph.add(mid("c"), mid("root"))  # materialise: root must reach f
        assert graph.precedes(mid("root"), mid("f"))
        assert graph.causal_past(mid("f")) == {
            mid("root"), mid("c"), mid("d"), mid("e")
        }
        assert_cache_matches_naive(graph)

    def test_propagation_through_diamond_fanout(self):
        # Two paths from the materialised node down to the sink: the
        # closure must arrive exactly once (pruned where already present).
        graph = DependencyGraph()
        graph.add(mid("left"), mid("hub"))
        graph.add(mid("right"), mid("hub"))
        graph.add(mid("sink"), [mid("left"), mid("right")])
        graph.add(mid("origin"))
        graph.add(mid("hub"), mid("origin"))
        assert graph.precedes(mid("origin"), mid("sink"))
        assert graph.concurrent(mid("left"), mid("right"))
        assert_cache_matches_naive(graph)

    def test_chained_materialisation(self):
        # Two dangling nodes materialise in sequence, each unlocking the
        # next layer of ancestry.
        graph = DependencyGraph()
        graph.add(mid("z"), mid("y"))
        graph.add(mid("y"), mid("x"))  # y materialises, z learns of x
        assert graph.precedes(mid("x"), mid("z"))
        graph.add(mid("x"), mid("w"))  # x materialises, z learns of w
        assert graph.precedes(mid("w"), mid("z"))
        # w stays dangling: precedes sees it, causal_past excludes it.
        assert graph.causal_past(mid("z")) == {mid("x"), mid("y")}
        assert_cache_matches_naive(graph)


class TestCacheSemantics:
    def test_dangling_labels_count_as_preceding(self):
        # The DFS reference treats dangling ancestors as reachable
        # endpoints; the closure must too.
        graph = DependencyGraph()
        graph.add(mid("b"), mid("ghost"))
        assert graph.precedes(mid("ghost"), mid("b"))
        assert graph.causal_past(mid("b")) == frozenset()
        assert_cache_matches_naive(graph)

    def test_unknown_later_never_preceded(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        assert not graph.precedes(mid("a"), mid("ghost"))

    def test_transitive_reduction_unchanged_by_cache(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        graph.add(mid("b"), mid("a"))
        graph.add(mid("c"), [mid("a"), mid("b")])  # a->c implied via b
        reduced = graph.transitive_reduction()
        assert reduced.ancestors_of(mid("c")) == frozenset({mid("b")})
        assert_cache_matches_naive(reduced)


class TestRandomisedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_insertion_orders_match_dfs(self, data):
        # Random DAG on up to 12 labels, inserted in random order so
        # dangling references and late materialisation occur naturally.
        n = data.draw(st.integers(2, 12), label="n")
        labels = [mid("m", i) for i in range(n)]
        edges = {
            i: sorted(
                data.draw(
                    st.sets(st.integers(0, i - 1), max_size=3),
                    label=f"anc{i}",
                )
            )
            if i > 0
            else []
            for i in range(n)
        }
        order = data.draw(st.permutations(list(range(n))), label="order")
        graph = DependencyGraph()
        for i in order:
            graph.add(labels[i], [labels[j] for j in edges[i]])
        assert_cache_matches_naive(graph)
