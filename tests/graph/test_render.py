"""Tests for graph rendering."""

from __future__ import annotations

from repro.graph.depgraph import DependencyGraph
from repro.graph.render import depth_levels, to_ascii, to_dot
from repro.types import MessageId


def mid(name: str) -> MessageId:
    return MessageId(name, 0)


def cycle_graph() -> DependencyGraph:
    graph = DependencyGraph()
    graph.add(mid("nc0"))
    graph.add(mid("c1"), mid("nc0"))
    graph.add(mid("c2"), mid("nc0"))
    graph.add(mid("nc1"), [mid("c1"), mid("c2")])
    return graph


class TestDot:
    def test_contains_all_nodes_and_edges(self):
        dot = to_dot(cycle_graph())
        assert dot.startswith("digraph")
        for name in ("nc0:0", "c1:0", "c2:0", "nc1:0"):
            assert f'"{name}"' in dot
        assert '"nc0:0" -> "c1:0";' in dot
        assert '"c1:0" -> "nc1:0";' in dot

    def test_highlighted_nodes_doubled(self):
        dot = to_dot(cycle_graph(), highlight={mid("nc1")})
        assert '"nc1:0" [shape=doublecircle];' in dot
        assert '"c1:0" [shape=ellipse];' in dot

    def test_valid_braces(self):
        dot = to_dot(cycle_graph())
        assert dot.count("{") == dot.count("}") == 1


class TestLevels:
    def test_depth_levels_of_cycle(self):
        levels = depth_levels(cycle_graph())
        assert levels[0] == [mid("nc0")]
        assert set(levels[1]) == {mid("c1"), mid("c2")}
        assert levels[2] == [mid("nc1")]

    def test_antichain_is_single_level(self):
        graph = DependencyGraph()
        for name in ("a", "b", "c"):
            graph.add(mid(name))
        levels = depth_levels(graph)
        assert len(levels) == 1 and len(levels[0]) == 3


class TestAscii:
    def test_concurrent_sets_marked(self):
        text = to_ascii(cycle_graph())
        assert "‖{c1:0, c2:0}" in text
        lines = text.splitlines()
        assert len(lines) == 3

    def test_highlight_star(self):
        text = to_ascii(cycle_graph(), highlight={mid("nc1")})
        assert "nc1:0*" in text

    def test_empty_graph(self):
        assert to_ascii(DependencyGraph()) == "(empty graph)"
