"""Tests for stability analysis (transition-preserving activities)."""

from __future__ import annotations

import pytest

from repro.core.commutativity import CommutativitySpec
from repro.core.state_machine import counter_machine
from repro.graph.depgraph import DependencyGraph
from repro.graph.stability import (
    commutativity_guarantees_stability,
    concurrent_pairs,
    is_transition_preserving,
    run_sequence,
)
from repro.types import Message, MessageId


def mid(name: str) -> MessageId:
    return MessageId(name, 0)


def make_cycle(operations: dict[str, str]):
    """Build the paper's activity: open ≺ ‖{middles} ≺ close.

    ``operations`` maps label-name -> operation for the middle messages.
    """
    graph = DependencyGraph()
    graph.add(mid("open"))
    for name in operations:
        graph.add(mid(name), mid("open"))
    graph.add(mid("close"), [mid(n) for n in operations])
    messages = {mid("open"): Message(mid("open"), "inc")}
    for name, op in operations.items():
        messages[mid(name)] = Message(mid(name), op)
    messages[mid("close")] = Message(mid("close"), "rd")
    return graph, messages


class TestRunSequence:
    def test_folds_messages(self):
        machine = counter_machine()
        messages = [Message(mid("a"), "inc"), Message(mid("b"), "inc")]
        assert run_sequence(machine.apply, 0, messages) == 2

    def test_empty_sequence_returns_initial(self):
        machine = counter_machine()
        assert run_sequence(machine.apply, 7, []) == 7


class TestExhaustiveCheck:
    def test_commuting_concurrent_ops_are_stable(self):
        graph, messages = make_cycle({"m1": "inc", "m2": "dec"})
        machine = counter_machine()
        stable, final = is_transition_preserving(
            graph, messages, machine.apply, 0
        )
        assert stable
        assert final == 1  # open inc +1, m1 +1, m2 -1

    def test_non_commuting_concurrent_ops_detected(self):
        # "set to 10" does not commute with "inc".
        graph = DependencyGraph()
        graph.add(mid("set"))
        graph.add(mid("inc"))

        def transition(state, message):
            if message.operation == "set":
                return 10
            return state + 1

        messages = {
            mid("set"): Message(mid("set"), "set"),
            mid("inc"): Message(mid("inc"), "inc"),
        }
        stable, _ = is_transition_preserving(graph, messages, transition, 0)
        assert not stable

    def test_chain_is_always_stable(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        graph.add(mid("b"), mid("a"))
        messages = {
            mid("a"): Message(mid("a"), "set"),
            mid("b"): Message(mid("b"), "inc"),
        }

        def transition(state, message):
            return 10 if message.operation == "set" else state + 1

        stable, final = is_transition_preserving(graph, messages, transition, 0)
        assert stable and final == 11

    def test_missing_message_raises(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        with pytest.raises(ValueError):
            is_transition_preserving(graph, {}, lambda s, m: s, 0)

    def test_sequence_explosion_guard(self):
        graph = DependencyGraph()
        messages = {}
        for i in range(8):
            label = MessageId("n", i)
            graph.add(label)
            messages[label] = Message(label, "inc")
        machine = counter_machine()
        with pytest.raises(ValueError):
            is_transition_preserving(
                graph, messages, machine.apply, 0, max_sequences=10
            )


class TestStaticCheck:
    def test_concurrent_pairs_of_cycle(self):
        graph, _ = make_cycle({"m1": "inc", "m2": "dec", "m3": "inc"})
        pairs = concurrent_pairs(graph)
        assert len(pairs) == 3  # the three middle messages pairwise

    def test_commutativity_guarantees_stability(self):
        graph, messages = make_cycle({"m1": "inc", "m2": "dec"})
        spec = CommutativitySpec(commutative_ops={"inc", "dec"})
        guaranteed, violations = commutativity_guarantees_stability(
            graph, messages, spec.commute
        )
        assert guaranteed and violations == []

    def test_violating_pair_reported(self):
        graph, messages = make_cycle({"m1": "inc", "m2": "rd"})
        spec = CommutativitySpec(commutative_ops={"inc", "dec"})
        guaranteed, violations = commutativity_guarantees_stability(
            graph, messages, spec.commute
        )
        assert not guaranteed
        assert (mid("m1"), mid("m2")) in violations

    def test_static_check_agrees_with_exhaustive_on_counter_cycles(self):
        graph, messages = make_cycle({"m1": "inc", "m2": "dec", "m3": "inc"})
        machine = counter_machine()
        spec = CommutativitySpec(commutative_ops={"inc", "dec"})
        static_ok, _ = commutativity_guarantees_stability(
            graph, messages, spec.commute
        )
        exhaustive_ok, _ = is_transition_preserving(
            graph, messages, machine.apply, 0
        )
        assert static_ok and exhaustive_ok
