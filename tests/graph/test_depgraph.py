"""Tests for message dependency graphs."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DependencyError
from repro.graph.depgraph import DependencyGraph
from repro.types import MessageId


def mid(sender: str, seqno: int = 0) -> MessageId:
    return MessageId(sender, seqno)


def diamond() -> DependencyGraph:
    """root -> {left, right} -> sink (the paper's Figure 3 shape)."""
    graph = DependencyGraph()
    graph.add(mid("root"))
    graph.add(mid("left"), mid("root"))
    graph.add(mid("right"), mid("root"))
    graph.add(mid("sink"), [mid("left"), mid("right")])
    return graph


class TestConstruction:
    def test_add_and_contains(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        assert mid("a") in graph
        assert len(graph) == 1

    def test_duplicate_label_rejected(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        with pytest.raises(DependencyError):
            graph.add(mid("a"))

    def test_self_dependency_rejected(self):
        graph = DependencyGraph()
        with pytest.raises(DependencyError):
            graph.add(mid("a"), mid("a"))

    def test_cycle_via_dangling_reference_rejected(self):
        graph = DependencyGraph()
        graph.add(mid("b"), mid("a"))  # b occurs after a (a not yet added)
        with pytest.raises(DependencyError):
            graph.add(mid("a"), mid("b"))  # a after b would close a cycle

    def test_longer_cycle_rejected(self):
        graph = DependencyGraph()
        graph.add(mid("c"), mid("b"))
        graph.add(mid("b"), mid("a"))
        with pytest.raises(DependencyError):
            graph.add(mid("a"), mid("c"))

    def test_dangling_ancestors_tracked(self):
        graph = DependencyGraph()
        graph.add(mid("b"), mid("a"))
        assert graph.dangling() == frozenset({mid("a")})
        graph.add(mid("a"))
        assert graph.dangling() == frozenset()

    def test_ancestors_and_descendants(self):
        graph = diamond()
        assert graph.ancestors_of(mid("sink")) == frozenset(
            {mid("left"), mid("right")}
        )
        assert graph.descendants_of(mid("root")) == frozenset(
            {mid("left"), mid("right")}
        )

    def test_unknown_label_queries_raise(self):
        graph = DependencyGraph()
        with pytest.raises(DependencyError):
            graph.ancestors_of(mid("ghost"))
        with pytest.raises(DependencyError):
            graph.descendants_of(mid("ghost"))

    def test_roots(self):
        graph = diamond()
        assert graph.roots() == [mid("root")]


class TestCausalRelations:
    def test_direct_precedence(self):
        graph = diamond()
        assert graph.precedes(mid("root"), mid("left"))

    def test_transitive_precedence(self):
        graph = diamond()
        assert graph.precedes(mid("root"), mid("sink"))

    def test_no_reverse_precedence(self):
        graph = diamond()
        assert not graph.precedes(mid("sink"), mid("root"))

    def test_nothing_precedes_itself(self):
        graph = diamond()
        assert not graph.precedes(mid("root"), mid("root"))

    def test_concurrency(self):
        graph = diamond()
        assert graph.concurrent(mid("left"), mid("right"))
        assert not graph.concurrent(mid("root"), mid("left"))
        assert not graph.concurrent(mid("left"), mid("left"))

    def test_causal_past(self):
        graph = diamond()
        assert graph.causal_past(mid("sink")) == frozenset(
            {mid("root"), mid("left"), mid("right")}
        )
        assert graph.causal_past(mid("root")) == frozenset()

    def test_concurrency_classes_cover_all_nodes(self):
        graph = diamond()
        classes = graph.concurrency_classes()
        covered = set().union(*classes)
        assert covered == set(graph.nodes)


class TestOrders:
    def test_topological_order_is_legal(self):
        graph = diamond()
        order = graph.topological_order()
        positions = {label: i for i, label in enumerate(order)}
        assert positions[mid("root")] < positions[mid("left")]
        assert positions[mid("root")] < positions[mid("right")]
        assert positions[mid("left")] < positions[mid("sink")]
        assert positions[mid("right")] < positions[mid("sink")]

    def test_topological_order_deterministic(self):
        assert diamond().topological_order() == diamond().topological_order()

    def test_diamond_has_two_linear_extensions(self):
        extensions = list(diamond().linear_extensions())
        assert len(extensions) == 2
        assert all(ext[0] == mid("root") for ext in extensions)
        assert all(ext[-1] == mid("sink") for ext in extensions)

    def test_antichain_has_factorial_extensions(self):
        graph = DependencyGraph()
        for name in ("a", "b", "c", "d"):
            graph.add(mid(name))
        assert graph.count_linear_extensions() == math.factorial(4)

    def test_chain_has_single_extension(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        graph.add(mid("b"), mid("a"))
        graph.add(mid("c"), mid("b"))
        assert graph.count_linear_extensions() == 1

    def test_linear_extensions_limit(self):
        graph = DependencyGraph()
        for name in ("a", "b", "c", "d"):
            graph.add(mid(name))
        assert len(list(graph.linear_extensions(limit=5))) == 5

    def test_dangling_ancestors_ignored_in_orders(self):
        graph = DependencyGraph()
        graph.add(mid("b"), mid("missing"))
        assert graph.topological_order() == [mid("b")]


class TestReductions:
    def test_transitive_reduction_removes_implied_edge(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        graph.add(mid("b"), mid("a"))
        graph.add(mid("c"), [mid("a"), mid("b")])  # a->c implied via b
        reduced = graph.transitive_reduction()
        assert reduced.ancestors_of(mid("c")) == frozenset({mid("b")})

    def test_reduction_preserves_reachability(self):
        graph = diamond()
        reduced = graph.transitive_reduction()
        for x in graph.nodes:
            for y in graph.nodes:
                assert graph.precedes(x, y) == reduced.precedes(x, y)

    def test_reduction_keeps_dangling_ancestors(self):
        graph = DependencyGraph()
        graph.add(mid("b"), mid("missing"))
        reduced = graph.transitive_reduction()
        assert mid("missing") in reduced.ancestors_of(mid("b"))

    def test_subgraph(self):
        graph = diamond()
        sub = graph.subgraph({mid("root"), mid("left")})
        assert set(sub.nodes) == {mid("root"), mid("left")}
        assert sub.ancestors_of(mid("left")) == frozenset({mid("root")})

    def test_edge_count(self):
        assert diamond().edge_count() == 4


@st.composite
def random_dags(draw):
    """Random DAG: each node depends on a subset of earlier nodes."""
    size = draw(st.integers(1, 7))
    graph = DependencyGraph()
    labels = [mid("n", i) for i in range(size)]
    for index, label in enumerate(labels):
        ancestor_indices = draw(
            st.sets(st.integers(0, max(0, index - 1)), max_size=index)
        )
        graph.add(label, [labels[i] for i in ancestor_indices])
    return graph


class TestGraphProperties:
    @given(random_dags())
    def test_every_linear_extension_is_legal(self, graph):
        for extension in graph.linear_extensions(limit=50):
            seen = set()
            for label in extension:
                assert graph.ancestors_of(label) <= seen | graph.dangling()
                seen.add(label)

    @given(random_dags())
    def test_topological_order_contains_all_nodes(self, graph):
        order = graph.topological_order()
        assert sorted(order) == sorted(graph.nodes)

    @given(random_dags())
    def test_precedence_is_antisymmetric(self, graph):
        for x in graph.nodes:
            for y in graph.nodes:
                assert not (graph.precedes(x, y) and graph.precedes(y, x))

    @given(random_dags())
    def test_reduction_preserves_precedence(self, graph):
        reduced = graph.transitive_reduction()
        for x in graph.nodes:
            for y in graph.nodes:
                assert graph.precedes(x, y) == reduced.precedes(x, y)


def pairwise_maximal(graph: DependencyGraph, labels) -> frozenset:
    """Reference implementation: all-pairs precedes filtering."""
    pool = set(labels)
    return frozenset(
        label
        for label in pool
        if not any(
            other != label and graph.precedes(label, other)
            for other in pool
        )
    )


class TestMaximalElements:
    def test_diamond_maximal_is_sink(self):
        graph = diamond()
        assert graph.maximal_elements(graph.nodes) == frozenset(
            {mid("sink")}
        )

    def test_antichain_is_its_own_maximal(self):
        graph = DependencyGraph()
        labels = [mid(s) for s in "xyz"]
        for label in labels:
            graph.add(label)
        assert graph.maximal_elements(labels) == frozenset(labels)

    def test_empty_and_singleton(self):
        graph = diamond()
        assert graph.maximal_elements([]) == frozenset()
        assert graph.maximal_elements([mid("root")]) == frozenset(
            {mid("root")}
        )

    def test_unknown_label_survives_unless_shadowed(self):
        graph = diamond()
        ghost = mid("ghost")
        # Unknown to the graph, concurrent with everything: kept.
        result = graph.maximal_elements([ghost, mid("sink")])
        assert result == frozenset({ghost, mid("sink")})

    def test_dangling_ancestor_is_shadowed_by_descendant(self):
        graph = DependencyGraph()
        dangler = mid("dangler")
        child = mid("child")
        graph.add(child, [dangler])  # dangler referenced, never added
        assert graph.maximal_elements([dangler, child]) == frozenset(
            {child}
        )

    @given(random_dags(), st.data())
    def test_matches_pairwise_reference(self, graph, data):
        nodes = graph.nodes
        subset = data.draw(
            st.sets(st.sampled_from(nodes), max_size=len(nodes))
            if nodes
            else st.just(set())
        )
        assert graph.maximal_elements(subset) == pairwise_maximal(
            graph, subset
        )

    @given(random_dags())
    def test_result_is_an_antichain(self, graph):
        result = graph.maximal_elements(graph.nodes)
        for x in result:
            for y in result:
                assert not graph.precedes(x, y)
