"""Tests for the experiment registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, get_experiment


EXPECTED_IDS = {
    "FIG1", "FIG2", "FIG3", "FIG4", "FIG5",
    "CLAIM-COMMUTE", "CLAIM-ASYNC", "CLAIM-CONCUR", "CLAIM-AGREE",
    "CLAIM-SCALE", "PROTO-OVERHEAD",
    "ABLATION-RECOVERY", "ABLATION-BATCH", "ABLATION-GC",
}


class TestRegistry:
    def test_every_designed_experiment_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_lookup_is_case_insensitive(self):
        assert get_experiment("fig2").exp_id == "FIG2"
        assert get_experiment("Claim-Commute").exp_id == "CLAIM-COMMUTE"

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("FIG99")

    def test_metadata_complete(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.title
            assert len(experiment.headers) >= 2


class TestExecution:
    @pytest.mark.parametrize("exp_id", ["FIG3", "CLAIM-CONCUR"])
    def test_cheap_experiments_produce_tables(self, exp_id):
        experiment = get_experiment(exp_id)
        rows = experiment.rows()
        assert rows
        assert all(len(row) == len(experiment.headers) for row in rows)
        table = experiment.table()
        assert experiment.title in table

    def test_cli_runs_experiment(self, capsys):
        from repro.cli import main

        assert main(["experiment", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "FIG3" in out

    def test_cli_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["experiment", "nothing"]) == 1
        assert "unknown experiment" in capsys.readouterr().out

    def test_cli_list_mentions_experiments(self, capsys):
        from repro.cli import main

        main(["list"])
        out = capsys.readouterr().out
        assert "FIG2" in out and "ABLATION-GC" in out
