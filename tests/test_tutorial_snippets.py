"""Execute every code block in docs/TUTORIAL.md.

The tutorial's blocks form one continuous program; running them in order
in a shared namespace guarantees the documentation cannot drift from the
library.
"""

from __future__ import annotations

import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"

BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_blocks() -> list[str]:
    text = TUTORIAL.read_text(encoding="utf-8")
    return BLOCK_PATTERN.findall(text)


class TestTutorial:
    def test_tutorial_exists_and_has_blocks(self):
        blocks = extract_blocks()
        assert len(blocks) >= 5

    def test_all_blocks_execute_in_order(self):
        namespace: dict = {}
        for index, block in enumerate(extract_blocks()):
            try:
                exec(compile(block, f"tutorial-block-{index}", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - diagnostics
                raise AssertionError(
                    f"tutorial block {index} failed: {exc}\n---\n{block}"
                ) from exc
        # The tutorial's own assertions ran; spot-check its final state.
        assert len(namespace["answers"]) == 3
