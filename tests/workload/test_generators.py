"""Tests for workload generation."""

from __future__ import annotations

import random

import pytest

from repro.core.access_protocol import StablePointSystem
from repro.core.commutativity import counter_spec
from repro.core.state_machine import counter_machine
from repro.errors import ConfigurationError
from repro.workload.generators import (
    WorkloadDriver,
    cycle_schedule,
    mixed_schedule,
    poisson_arrivals,
    uniform_arrivals,
)


class TestArrivals:
    def test_poisson_is_increasing(self):
        times = poisson_arrivals(1.0, 50, random.Random(0))
        assert times == sorted(times)
        assert len(times) == 50

    def test_poisson_rate_roughly_respected(self):
        times = poisson_arrivals(2.0, 2000, random.Random(0))
        mean_gap = times[-1] / len(times)
        assert 0.4 < mean_gap < 0.6

    def test_poisson_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(0.0, 10, random.Random(0))

    def test_uniform_arrivals_spacing(self):
        times = uniform_arrivals(2.0, 3, start=1.0)
        assert times == [3.0, 5.0, 7.0]

    def test_uniform_rejects_nonpositive_spacing(self):
        with pytest.raises(ConfigurationError):
            uniform_arrivals(0.0, 3)


class TestCycleSchedule:
    def test_shape_matches_f_parameter(self):
        schedule = cycle_schedule(
            ["a", "b"], ["inc", "dec"], "rd",
            cycles=4, f=3, rng=random.Random(0),
        )
        assert len(schedule) == 4 * (3 + 1)
        operations = [r.operation for r in schedule]
        # Every 4th operation is the non-commutative one.
        assert operations[3::4] == ["rd"] * 4
        assert all(op in ("inc", "dec") for op in operations if op != "rd")

    def test_times_increase(self):
        schedule = cycle_schedule(
            ["a"], ["inc"], "rd", cycles=3, f=2, rng=random.Random(1)
        )
        times = [r.time for r in schedule]
        assert times == sorted(times)

    def test_nc_requests_pinned_to_one_issuer(self):
        schedule = cycle_schedule(
            ["a", "b", "c"], ["inc"], "rd",
            cycles=5, f=2, rng=random.Random(2),
        )
        nc_issuers = {r.member for r in schedule if r.operation == "rd"}
        assert nc_issuers == {"a"}

    def test_explicit_issuer_pins_everything(self):
        schedule = cycle_schedule(
            ["a", "b"], ["inc"], "rd",
            cycles=2, f=2, rng=random.Random(3), issuer="b",
        )
        assert {r.member for r in schedule} == {"b"}

    def test_payload_factory(self):
        schedule = cycle_schedule(
            ["a"], ["inc"], "rd", cycles=1, f=1, rng=random.Random(4),
            payload_factory=lambda op, i: {"op": op, "i": i},
        )
        assert schedule[0].payload == {"op": "inc", "i": 0}
        assert schedule[1].payload == {"op": "rd", "i": 1}

    def test_f_zero_is_all_non_commutative(self):
        schedule = cycle_schedule(
            ["a"], [], "rd", cycles=3, f=0, rng=random.Random(5)
        )
        assert [r.operation for r in schedule] == ["rd"] * 3

    def test_f_positive_requires_commutative_ops(self):
        with pytest.raises(ConfigurationError):
            cycle_schedule(["a"], [], "rd", cycles=1, f=1, rng=random.Random(0))


class TestMixedSchedule:
    def test_respects_weights_roughly(self):
        schedule = mixed_schedule(
            ["a"], {"qry": 9.0, "upd": 1.0}, 2000, random.Random(0)
        )
        queries = sum(1 for r in schedule if r.operation == "qry")
        assert 1650 < queries < 1950

    def test_invalid_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            mixed_schedule(["a"], {"qry": -1.0}, 10, random.Random(0))

    def test_empty_operations_rejected(self):
        with pytest.raises(ConfigurationError):
            mixed_schedule(["a"], {}, 10, random.Random(0))


class TestWorkloadDriver:
    def test_drives_system_at_scheduled_times(self):
        system = StablePointSystem(
            ["a", "b"], counter_machine, counter_spec(), seed=0
        )
        schedule = cycle_schedule(
            ["a", "b"], ["inc", "dec"], "rd",
            cycles=3, f=2, rng=random.Random(0),
            payload_factory=lambda op, i: {"item": "x", "amount": 1},
        )
        driver = WorkloadDriver(system.scheduler, system.request, schedule)
        system.run()
        assert len(driver.issued) == len(schedule)
        # Every member delivered every request.
        for protocol in system.protocols.values():
            assert len(protocol.delivered) == len(schedule)
