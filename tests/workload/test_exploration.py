"""Tests for interleaving exploration."""

from __future__ import annotations

from repro.broadcast.osend import OSendBroadcast
from repro.graph.depgraph import DependencyGraph
from repro.group.membership import GroupMembership
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.workload.exploration import (
    explore_orderings,
    ordering_diversity_ratio,
)


def fig2_scenario(seed: int):
    """The Figure 2 shape: mk ≺ ‖{mi, mj}."""
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 3.0), rng=RngRegistry(seed)
    )
    membership = GroupMembership(["ai", "aj", "ak"])
    stacks = {
        m: network.register(OSendBroadcast(m, membership))
        for m in ("ai", "aj", "ak")
    }
    mk = stacks["ak"].osend("mk")
    stacks["ai"].osend("mi", occurs_after=mk)
    stacks["aj"].osend("mj", occurs_after=mk)
    scheduler.run()
    return {m: s.delivered for m, s in stacks.items()}


def chain_scenario(seed: int):
    """A fully chained scenario: exactly one legal order."""
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=UniformLatency(0.2, 3.0), rng=RngRegistry(seed)
    )
    membership = GroupMembership(["a", "b"])
    stacks = {
        m: network.register(OSendBroadcast(m, membership)) for m in ("a", "b")
    }
    previous = None
    for _ in range(3):
        previous = stacks["a"].osend("op", occurs_after=previous)
    scheduler.run()
    return {m: s.delivered for m, s in stacks.items()}


class TestExploration:
    def test_concurrent_scenario_shows_both_orders(self):
        report = explore_orderings(fig2_scenario, range(12))
        assert report.runs == 12
        assert report.distinct == 2  # (mk,mi,mj) and (mk,mj,mi)

    def test_all_observed_orders_are_legal(self):
        report = explore_orderings(fig2_scenario, range(12))
        # Rebuild the declared graph and check every ordering against it.
        sequences = fig2_scenario(0)
        graph = DependencyGraph()
        some_order = next(iter(report.orderings))
        mk = some_order[0]
        graph.add(mk)
        for label in {l for o in report.orderings for l in o} - {mk}:
            graph.add(label, mk)
        from repro.analysis.serializability import check_sequence_legal

        for ordering in report.orderings:
            assert check_sequence_legal(graph, list(ordering))

    def test_chained_scenario_has_single_order(self):
        report = explore_orderings(chain_scenario, range(8))
        assert report.distinct == 1
        assert report.member_diversity("a") == 1

    def test_member_diversity(self):
        report = explore_orderings(fig2_scenario, range(12))
        # Even a single member sees both orders across seeds.
        assert report.member_diversity("ak") == 2

    def test_diversity_ratio(self):
        report = explore_orderings(fig2_scenario, range(12))
        assert ordering_diversity_ratio(report, total_legal=2) == 1.0
        assert ordering_diversity_ratio(report, total_legal=0) == 0.0
