"""Multi-shard workload generation, v2 persistence, and replay."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import ConfigurationError
from repro.shard import ShardMap, ShardedCluster
from repro.workload import (
    ScheduledRequest,
    WorkloadDriver,
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
    sharded_schedule,
)

SHARD_MAP = ShardMap(3, num_slots=16)


def sample_schedule(seed: int = 0, **overrides):
    config = dict(
        sessions=3, ops_per_session=6, cross_fraction=0.4, read_fraction=0.25
    )
    config.update(overrides)
    return sharded_schedule(SHARD_MAP, rng=random.Random(seed), **config)


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert sample_schedule(seed=2) == sample_schedule(seed=2)
        assert sample_schedule(seed=2) != sample_schedule(seed=3)

    def test_every_request_names_a_session(self):
        schedule = sample_schedule()
        assert len(schedule) == 18
        assert {r.session for r in schedule} == {"sess0", "sess1", "sess2"}

    def test_sessions_interleave_but_stay_ordered(self):
        schedule = sample_schedule()
        assert [r.time for r in schedule] == sorted(r.time for r in schedule)
        for name in ("sess0", "sess1", "sess2"):
            times = [r.time for r in schedule if r.session == name]
            assert times == sorted(times)
        # Round-robin dealt arrivals: no session owns a contiguous block.
        first_session = schedule[0].session
        assert any(r.session != first_session for r in schedule[:4])

    def test_put_keys_route_to_their_member_shard(self):
        schedule = sample_schedule(cross_fraction=1.0, read_fraction=0.0)
        for request in schedule:
            assert request.operation == "put"
            shard = SHARD_MAP.shard_of(request.payload["key"])
            assert request.member == f"shard{shard}"

    def test_zero_cross_fraction_pins_sessions_home(self):
        schedule = sample_schedule(cross_fraction=0.0, read_fraction=0.0)
        for request in schedule:
            number = int(request.session.removeprefix("sess"))
            home = number % SHARD_MAP.num_shards
            assert SHARD_MAP.shard_of(request.payload["key"]) == home

    def test_reads_touch_two_sorted_shards(self):
        schedule = sample_schedule(read_fraction=1.0)
        for request in schedule:
            assert request.operation == "read"
            touched = request.payload["shards"]
            assert len(touched) == 2 and touched == sorted(touched)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_schedule(sessions=0)
        with pytest.raises(ConfigurationError):
            sample_schedule(cross_fraction=2.0)
        with pytest.raises(ConfigurationError):
            sample_schedule(read_fraction=-0.5)


class TestPersistenceV2:
    def test_round_trip_preserves_sessions(self, tmp_path):
        schedule = sample_schedule()
        path = tmp_path / "sharded.json"
        save_schedule(schedule, path)
        assert load_schedule(path) == schedule

    def test_documents_declare_version_2(self):
        document = json.loads(schedule_to_json(sample_schedule()))
        assert document["version"] == 2
        assert all("session" in entry for entry in document["requests"])

    def test_sessionless_requests_omit_the_field(self):
        document = json.loads(
            schedule_to_json([ScheduledRequest(1.0, "a", "op")])
        )
        assert "session" not in document["requests"][0]

    def test_version_1_documents_still_load(self):
        legacy = json.dumps({
            "version": 1,
            "requests": [
                {"time": 1.5, "member": "a", "operation": "inc",
                 "payload": {"item": "x"}},
            ],
        })
        (request,) = schedule_from_json(legacy)
        assert request == ScheduledRequest(1.5, "a", "inc", {"item": "x"})
        assert request.session is None

    def test_future_versions_rejected(self):
        with pytest.raises(ConfigurationError):
            schedule_from_json('{"version": 3, "requests": []}')


class TestReplay:
    def test_schedule_drives_a_sharded_cluster_deterministically(self, tmp_path):
        cluster_map = ShardedCluster(shards=2, members_per_shard=3).shard_map
        schedule = sharded_schedule(
            cluster_map, sessions=2, ops_per_session=5,
            rng=random.Random(4), cross_fraction=0.5, read_fraction=0.2,
        )
        path = tmp_path / "w.json"
        save_schedule(schedule, path)

        def run(sched):
            cluster = ShardedCluster(shards=2, members_per_shard=3, seed=6)

            def submit(session, operation, payload):
                target = cluster.router.session(session)
                if operation == "put":
                    target.put(payload["key"], payload["value"])
                else:
                    target.read(payload["shards"])

            for request in sched:
                cluster.scheduler.call_at(
                    request.time, submit,
                    request.session, request.operation, request.payload,
                )
            cluster.drain()
            violations, _rounds = cluster.settle()
            assert violations == []
            assert cluster.check_invariants() == []
            return (
                cluster.issue_order,
                [read.value for read in cluster.barrier_reads],
            )

        assert run(schedule) == run(load_schedule(path))

    def test_workload_driver_accepts_sharded_requests(self):
        # The generic driver still works: session rides in the payload
        # closure via request introspection.
        calls = []
        schedule = sample_schedule(seed=1, sessions=2, ops_per_session=3)

        class FakeScheduler:
            def call_at(self, time, fn, *args):
                calls.append((time, fn, args))

        driver = WorkloadDriver(
            FakeScheduler(),
            lambda member, operation, payload: None,
            schedule,
        )
        assert len(calls) == len(schedule)
        assert driver.issued == []
