"""Tests for schedule persistence."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.generators import ScheduledRequest, cycle_schedule
from repro.workload.persistence import (
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)


def sample_schedule():
    return cycle_schedule(
        ["a", "b"], ["inc", "dec"], "rd",
        cycles=2, f=3, rng=random.Random(0),
        payload_factory=lambda op, i: {"item": "x", "i": i},
    )


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        schedule = sample_schedule()
        restored = schedule_from_json(schedule_to_json(schedule))
        assert restored == schedule

    def test_file_round_trip(self, tmp_path):
        schedule = sample_schedule()
        path = tmp_path / "workload.json"
        save_schedule(schedule, path)
        assert load_schedule(path) == schedule

    def test_none_payloads_allowed(self):
        schedule = [ScheduledRequest(1.0, "a", "op", None)]
        assert schedule_from_json(schedule_to_json(schedule)) == schedule


class TestValidation:
    def test_unserializable_payload_rejected(self):
        schedule = [ScheduledRequest(1.0, "a", "op", object())]
        with pytest.raises(ConfigurationError):
            schedule_to_json(schedule)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            schedule_from_json("{not json")

    def test_missing_requests_key_rejected(self):
        with pytest.raises(ConfigurationError):
            schedule_from_json("{}")

    def test_wrong_version_rejected(self):
        with pytest.raises(ConfigurationError):
            schedule_from_json('{"version": 99, "requests": []}')

    def test_malformed_entry_rejected(self):
        with pytest.raises(ConfigurationError):
            schedule_from_json(
                '{"version": 1, "requests": [{"time": "soon"}]}'
            )


class TestReplay:
    def test_saved_schedule_reproduces_run(self, tmp_path):
        from repro.core.access_protocol import StablePointSystem
        from repro.core.commutativity import counter_spec
        from repro.core.state_machine import counter_machine
        from repro.workload.generators import WorkloadDriver

        schedule = cycle_schedule(
            ["a", "b"], ["inc", "dec"], "rd",
            cycles=2, f=2, rng=random.Random(7),
            payload_factory=lambda op, i: {"item": "x", "amount": 1},
        )
        path = tmp_path / "w.json"
        save_schedule(schedule, path)

        def run(sched):
            system = StablePointSystem(
                ["a", "b"], counter_machine, counter_spec(), seed=1
            )
            WorkloadDriver(system.scheduler, system.request, sched)
            system.run()
            return system.delivered_sequences(), system.states()

        assert run(schedule) == run(load_schedule(path))
