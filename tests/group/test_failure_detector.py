"""Tests for the heartbeat failure detector."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.group.failure_detector import HeartbeatFailureDetector
from repro.sim.scheduler import Scheduler


def make_detector(timeout: float = 2.0):
    scheduler = Scheduler()
    detector = HeartbeatFailureDetector(
        scheduler, ["a", "b"], timeout=timeout, check_interval=0.5
    )
    return scheduler, detector


class TestSuspicion:
    def test_silent_member_becomes_suspected(self):
        scheduler, detector = make_detector()
        detector.start()
        scheduler.run_until(5.0)
        assert detector.is_suspected("a")
        assert detector.is_suspected("b")

    def test_heartbeats_prevent_suspicion(self):
        scheduler, detector = make_detector()
        detector.start()
        for t in (1.0, 2.0, 3.0, 4.0):
            scheduler.call_at(t, detector.heartbeat, "a")
        scheduler.run_until(5.0)
        assert not detector.is_suspected("a")
        assert detector.is_suspected("b")

    def test_listener_invoked_once_per_suspicion(self):
        scheduler, detector = make_detector()
        suspected = []
        detector.subscribe(suspected.append)
        detector.start()
        scheduler.run_until(10.0)
        assert sorted(suspected) == ["a", "b"]

    def test_speaking_again_unsuspects(self):
        scheduler, detector = make_detector()
        detector.start()
        scheduler.run_until(5.0)
        assert detector.is_suspected("a")
        detector.heartbeat("a")
        assert not detector.is_suspected("a")

    def test_suspected_set_copy(self):
        scheduler, detector = make_detector()
        detector.start()
        scheduler.run_until(5.0)
        snapshot = detector.suspected
        snapshot.clear()
        assert detector.is_suspected("a")


class TestMonitoredSet:
    def test_monitor_adds_entity_with_fresh_grace(self):
        scheduler, detector = make_detector()
        detector.start()
        scheduler.run_until(5.0)
        detector.monitor("c")
        assert detector.is_monitored("c")
        assert not detector.is_suspected("c")
        scheduler.run_until(10.0)
        assert detector.is_suspected("c")

    def test_monitor_is_idempotent(self):
        scheduler, detector = make_detector()
        detector.start()
        # Half the timeout passes in silence; re-monitoring an already
        # monitored entity must not reset its silence clock.
        scheduler.run_until(1.5)
        detector.monitor("a")
        scheduler.run_until(2.6)
        assert detector.is_suspected("a")

    def test_forget_removes_and_unsuspects(self):
        scheduler, detector = make_detector()
        suspected = []
        detector.subscribe(suspected.append)
        detector.start()
        scheduler.run_until(5.0)
        assert detector.is_suspected("a")
        detector.forget("a")
        assert not detector.is_monitored("a")
        assert not detector.is_suspected("a")
        scheduler.run_until(10.0)
        assert suspected.count("a") == 1  # never re-suspected

    def test_forget_unknown_entity_is_a_noop(self):
        _, detector = make_detector()
        detector.forget("ghost")
        assert not detector.is_monitored("ghost")

    def test_reset_clocks_grants_fresh_grace(self):
        scheduler, detector = make_detector()
        detector.start()
        scheduler.run_until(5.0)
        assert detector.suspected == {"a", "b"}
        detector.reset_clocks()
        assert not detector.suspected
        scheduler.run_until(6.5)
        assert not detector.suspected  # inside the fresh grace period
        scheduler.run_until(10.0)
        assert detector.suspected == {"a", "b"}

    def test_inactive_owner_accrues_no_suspicions(self):
        scheduler = Scheduler()
        active = [True]
        detector = HeartbeatFailureDetector(
            scheduler,
            ["a"],
            timeout=2.0,
            check_interval=0.5,
            active=lambda: active[0],
        )
        detector.start()
        active[0] = False  # owner crashed: silence must not be judged
        scheduler.run_until(5.0)
        assert not detector.suspected
        active[0] = True
        scheduler.run_until(10.0)
        assert detector.is_suspected("a")


class TestLifecycle:
    def test_stop_halts_checking(self):
        scheduler, detector = make_detector()
        detector.start()
        detector.stop()
        scheduler.run_until(10.0)
        assert not detector.suspected

    def test_start_is_idempotent(self):
        scheduler, detector = make_detector()
        detector.start()
        detector.start()
        scheduler.run_until(1.0)

    def test_unknown_entity_heartbeat_rejected(self):
        _, detector = make_detector()
        with pytest.raises(ConfigurationError):
            detector.heartbeat("ghost")

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            HeartbeatFailureDetector(Scheduler(), ["a"], timeout=0.0)
