"""Tests for view-synchronous membership change."""

from __future__ import annotations

import pytest

from repro.broadcast.osend import OSendBroadcast
from repro.errors import MembershipError, ProtocolError
from repro.group.membership import GroupMembership
from repro.group.view_sync import ViewSyncAgent, attach_view_sync
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


def make_group(members=("a", "b", "c"), seed: int = 0):
    scheduler = Scheduler()
    net = Network(
        scheduler, latency=UniformLatency(0.2, 1.5), rng=RngRegistry(seed)
    )
    membership = GroupMembership(list(members))
    stacks = {
        m: net.register(OSendBroadcast(m, membership)) for m in members
    }
    agents = attach_view_sync(stacks)
    return scheduler, net, membership, stacks, agents


class TestFlushProtocol:
    def test_leave_installs_new_view_everywhere(self):
        scheduler, _, membership, stacks, agents = make_group()
        installed = []
        for member, agent in agents.items():
            agent.on_install(
                lambda view, member=member: installed.append(
                    (member, view.view_id)
                )
            )
        agents["a"].propose("leave", "c")
        scheduler.run()
        assert membership.view.members == ("a", "b")
        assert sorted(installed) == [("a", 1), ("b", 1), ("c", 1)]
        assert agents["a"].changes_installed == 1

    def test_join_installs_new_view(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["b"].propose("join", "d")
        scheduler.run()
        assert "d" in membership.view.members
        assert membership.view.view_id == 1

    def test_old_view_messages_flushed_before_install(self):
        """View synchrony: at FLUSH_OK every member had delivered the
        same old-view message set."""
        scheduler, _, membership, stacks, agents = make_group()
        m1 = stacks["a"].osend("op")
        m2 = stacks["b"].osend("op", occurs_after=m1)
        agents["a"].propose("leave", "c")
        scheduler.run()
        snapshots = {m: a.flush_snapshot for m, a in agents.items()}
        assert all(snap is not None for snap in snapshots.values())
        assert snapshots["a"] == snapshots["b"] == snapshots["c"]
        assert {m1, m2} <= snapshots["a"]

    def test_sends_frozen_during_flush(self):
        scheduler, _, membership, stacks, agents = make_group()
        # Block c's drain forever: dependency on a ghost message.
        from repro.types import MessageId

        stacks["c"].osend("blocked", occurs_after=MessageId("ghost", 0))
        agents["a"].propose("leave", "b")
        scheduler.run_until(5.0)
        assert agents["a"].frozen
        with pytest.raises(ProtocolError):
            stacks["a"].bcast("op")

    def test_unfrozen_after_install(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["a"].propose("leave", "c")
        scheduler.run()
        assert not agents["a"].frozen
        stacks["a"].bcast("op")  # must not raise
        scheduler.run()

    def test_concurrent_proposal_rejected_locally(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["a"].propose("leave", "c")
        scheduler.run_until(0.1)
        # a has delivered its own proposal by now -> pending change set.
        if agents["a"]._pending_change is not None:
            with pytest.raises(ProtocolError):
                agents["a"].propose("leave", "b")

    def test_invalid_proposals_rejected(self):
        _, __, ___, ____, agents = make_group()
        with pytest.raises(MembershipError):
            agents["a"].propose("join", "a")
        with pytest.raises(MembershipError):
            agents["a"].propose("leave", "zz")
        with pytest.raises(ProtocolError):
            agents["a"].propose("explode", "a")

    def test_stale_proposal_for_old_view_ignored(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["a"].propose("leave", "c")
        scheduler.run()
        assert membership.view.view_id == 1
        # Replay a proposal built against view 0: must be ignored.
        from repro.group.view_sync import ViewChange

        agents["a"]._on_proposal(ViewChange("leave", "b", old_view_id=0))
        assert agents["a"]._pending_change is None
        assert membership.view.members == ("a", "b")


class TestSequentialChanges:
    def test_two_changes_back_to_back(self):
        scheduler, _, membership, stacks, agents = make_group(
            members=("a", "b", "c", "d")
        )
        agents["a"].propose("leave", "d")
        scheduler.run()
        assert membership.view.members == ("a", "b", "c")
        agents["b"].propose("join", "e")
        scheduler.run()
        assert membership.view.members == ("a", "b", "c", "e")
        assert membership.view.view_id == 2


class TestConcurrentProposals:
    """Concurrent same-view proposals used to deadlock: each member froze
    on "its" change and waited forever for the other's FLUSH_OK."""

    def test_concurrent_proposals_converge(self):
        scheduler, _, membership, stacks, agents = make_group(
            members=("a", "b", "c", "d")
        )
        # Two rival proposals in flight for view 0 at the same instant.
        agents["a"].propose("leave", "c")
        agents["b"].propose("leave", "d")
        scheduler.run()
        # The tie-break serialises them; both install, nobody deadlocks.
        assert membership.view.members == ("a", "b")
        assert membership.view.view_id == 2
        assert all(not agent.frozen for agent in agents.values())
        assert all(
            agent._pending_change is None for agent in agents.values()
        )

    def test_leave_beats_concurrent_join(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["a"].propose("join", "e")
        agents["b"].propose("leave", "c")
        scheduler.run()
        # The leave wins the tie-break and installs first; the join is
        # re-proposed against the new view and lands second.
        assert membership.view.members == ("a", "b", "e")
        assert membership.view.view_id == 2
        first, second = agents["a"].install_history[:2]
        assert first.change.kind == "leave"
        assert second.change.kind == "join"

    def test_duplicate_proposals_install_once(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["a"].propose("leave", "c")
        agents["b"].propose("leave", "c")
        scheduler.run()
        assert membership.view.members == ("a", "b")
        assert membership.view.view_id == 1


class TestStaleFlushFinalization:
    """A pending flush whose (shared) view moved on must resolve instead
    of waiting forever for FLUSH_OK re-broadcasts nobody sends anymore."""

    def test_adopts_outcome_when_change_already_applied(self):
        from repro.group.view_sync import ViewChange

        scheduler, _, membership, stacks, agents = make_group()
        agent = agents["a"]
        agent._consider(ViewChange("leave", "c", old_view_id=0))
        assert agent.frozen
        # A peer completes the flush first and advances the shared view.
        membership.leave("c")
        scheduler.run()
        assert not agent.frozen
        assert agent._pending_change is None
        assert agent.changes_installed == 1

    def test_reproposes_when_view_changed_some_other_way(self):
        from repro.group.view_sync import ViewChange

        scheduler, _, membership, stacks, agents = make_group()
        agents["a"]._consider(ViewChange("leave", "b", old_view_id=0))
        # The view advances, but b is still a member: the pending change
        # lost a race it never saw and must be re-proposed, not dropped.
        membership.leave("c")
        scheduler.run()
        assert "b" not in membership.view.members
        assert membership.view.view_id == 2
        assert all(not agent.frozen for agent in agents.values())

    def test_reset_volatile_abandons_flush(self):
        from repro.group.view_sync import ViewChange

        _, __, ___, ____, agents = make_group()
        agent = agents["a"]
        agent._consider(ViewChange("leave", "c", old_view_id=0))
        assert agent.frozen
        agent.reset_volatile()
        assert not agent.frozen
        assert agent._pending_change is None
        assert agent._deferred == []
