"""Tests for view-synchronous membership change."""

from __future__ import annotations

import pytest

from repro.broadcast.osend import OSendBroadcast
from repro.errors import MembershipError, ProtocolError
from repro.group.membership import GroupMembership
from repro.group.view_sync import ViewSyncAgent, attach_view_sync
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


def make_group(members=("a", "b", "c"), seed: int = 0):
    scheduler = Scheduler()
    net = Network(
        scheduler, latency=UniformLatency(0.2, 1.5), rng=RngRegistry(seed)
    )
    membership = GroupMembership(list(members))
    stacks = {
        m: net.register(OSendBroadcast(m, membership)) for m in members
    }
    agents = attach_view_sync(stacks)
    return scheduler, net, membership, stacks, agents


class TestFlushProtocol:
    def test_leave_installs_new_view_everywhere(self):
        scheduler, _, membership, stacks, agents = make_group()
        installed = []
        for member, agent in agents.items():
            agent.on_install(
                lambda view, member=member: installed.append(
                    (member, view.view_id)
                )
            )
        agents["a"].propose("leave", "c")
        scheduler.run()
        assert membership.view.members == ("a", "b")
        assert sorted(installed) == [("a", 1), ("b", 1), ("c", 1)]
        assert agents["a"].changes_installed == 1

    def test_join_installs_new_view(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["b"].propose("join", "d")
        scheduler.run()
        assert "d" in membership.view.members
        assert membership.view.view_id == 1

    def test_old_view_messages_flushed_before_install(self):
        """View synchrony: at FLUSH_OK every member had delivered the
        same old-view message set."""
        scheduler, _, membership, stacks, agents = make_group()
        m1 = stacks["a"].osend("op")
        m2 = stacks["b"].osend("op", occurs_after=m1)
        agents["a"].propose("leave", "c")
        scheduler.run()
        snapshots = {m: a.flush_snapshot for m, a in agents.items()}
        assert all(snap is not None for snap in snapshots.values())
        assert snapshots["a"] == snapshots["b"] == snapshots["c"]
        assert {m1, m2} <= snapshots["a"]

    def test_sends_frozen_during_flush(self):
        scheduler, _, membership, stacks, agents = make_group()
        # Block c's drain forever: dependency on a ghost message.
        from repro.types import MessageId

        stacks["c"].osend("blocked", occurs_after=MessageId("ghost", 0))
        agents["a"].propose("leave", "b")
        scheduler.run_until(5.0)
        assert agents["a"].frozen
        with pytest.raises(ProtocolError):
            stacks["a"].bcast("op")

    def test_unfrozen_after_install(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["a"].propose("leave", "c")
        scheduler.run()
        assert not agents["a"].frozen
        stacks["a"].bcast("op")  # must not raise
        scheduler.run()

    def test_concurrent_proposal_rejected_locally(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["a"].propose("leave", "c")
        scheduler.run_until(0.1)
        # a has delivered its own proposal by now -> pending change set.
        if agents["a"]._pending_change is not None:
            with pytest.raises(ProtocolError):
                agents["a"].propose("leave", "b")

    def test_invalid_proposals_rejected(self):
        _, __, ___, ____, agents = make_group()
        with pytest.raises(MembershipError):
            agents["a"].propose("join", "a")
        with pytest.raises(MembershipError):
            agents["a"].propose("leave", "zz")
        with pytest.raises(ProtocolError):
            agents["a"].propose("explode", "a")

    def test_stale_proposal_for_old_view_ignored(self):
        scheduler, _, membership, stacks, agents = make_group()
        agents["a"].propose("leave", "c")
        scheduler.run()
        assert membership.view.view_id == 1
        # Replay a proposal built against view 0: must be ignored.
        from repro.group.view_sync import ViewChange

        agents["a"]._on_proposal(ViewChange("leave", "b", old_view_id=0))
        assert agents["a"]._pending_change is None
        assert membership.view.members == ("a", "b")


class TestSequentialChanges:
    def test_two_changes_back_to_back(self):
        scheduler, _, membership, stacks, agents = make_group(
            members=("a", "b", "c", "d")
        )
        agents["a"].propose("leave", "d")
        scheduler.run()
        assert membership.view.members == ("a", "b", "c")
        agents["b"].propose("join", "e")
        scheduler.run()
        assert membership.view.members == ("a", "b", "c", "e")
        assert membership.view.view_id == 2
