"""Tests for failure-driven membership management."""

from __future__ import annotations

import pytest

from repro.broadcast.osend import OSendBroadcast
from repro.errors import ProtocolError
from repro.group.auto_membership import MembershipManager, manage_membership
from repro.group.membership import GroupMembership
from repro.group.view_sync import attach_view_sync
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


def make_cluster(members=("a", "b", "c")):
    scheduler = Scheduler()
    faults = FaultPlan()
    net = Network(
        scheduler,
        latency=ConstantLatency(0.3),
        faults=faults,
        rng=RngRegistry(0),
    )
    membership = GroupMembership(list(members))
    stacks = {
        m: net.register(OSendBroadcast(m, membership)) for m in members
    }
    agents = attach_view_sync(stacks)
    managers = manage_membership(
        stacks, agents, heartbeat_interval=1.0, suspicion_timeout=3.0
    )
    return scheduler, faults, membership, stacks, agents, managers


class TestHeartbeats:
    def test_healthy_cluster_never_suspects(self):
        scheduler, _, membership, stacks, agents, managers = make_cluster()
        for manager in managers.values():
            manager.start(duration=15.0)
        scheduler.run()
        assert membership.view.view_id == 0
        for manager in managers.values():
            assert not manager.detector.suspected

    def test_heartbeats_are_invisible_to_the_app(self):
        scheduler, _, __, stacks, agents, managers = make_cluster()
        seen = []
        stacks["a"].on_deliver(lambda env: seen.append(env))
        for manager in managers.values():
            manager.start(duration=5.0)
        scheduler.run()
        assert seen == []

    def test_invalid_interval_rejected(self):
        scheduler, _, __, stacks, agents, managers = make_cluster()
        with pytest.raises(ProtocolError):
            MembershipManager(
                stacks["a"], agents["a"], heartbeat_interval=0.0
            )


class TestCrashHandling:
    def test_partitioned_member_is_removed(self):
        scheduler, faults, membership, stacks, agents, managers = make_cluster()
        for manager in managers.values():
            manager.start(duration=25.0)
        # c crashes (partitioned away) at t=5.
        scheduler.call_at(5.0, faults.partition, {"a", "b"}, {"c"})
        scheduler.run()
        assert membership.view.members == ("a", "b")
        assert membership.view.view_id == 1

    def test_only_the_coordinator_proposes(self):
        scheduler, faults, membership, stacks, agents, managers = make_cluster()
        for manager in managers.values():
            manager.start(duration=25.0)
        scheduler.call_at(5.0, faults.partition, {"a", "b"}, {"c"})
        scheduler.run()
        proposals = {m: mgr.removals_proposed for m, mgr in managers.items()}
        assert proposals["a"] == 1
        assert proposals["b"] == 0

    def test_survivors_keep_working_after_removal(self):
        scheduler, faults, membership, stacks, agents, managers = make_cluster()
        for manager in managers.values():
            manager.start(duration=25.0)
        scheduler.call_at(5.0, faults.partition, {"a", "b"}, {"c"})
        scheduler.run()
        assert membership.view.members == ("a", "b")
        label = stacks["a"].osend("op")
        scheduler.run()
        assert label in stacks["b"].delivered

    def test_fallback_proposer_takes_over_when_primary_crashes(self):
        # d falls silent; a — the lowest-ranked live member, hence the
        # primary proposer — crashes before its own suspicion of d even
        # fires.  Without the rank-staggered fallback timers the removal
        # would never be proposed and the group would keep a dead member
        # forever; with them, b (the next-lowest survivor) proposes both
        # removals.
        scheduler, faults, membership, stacks, agents, managers = (
            make_cluster(("a", "b", "c", "d"))
        )
        for manager in managers.values():
            manager.start(duration=60.0)
        scheduler.call_at(5.0, faults.partition, {"a", "b", "c"}, {"d"})
        scheduler.call_at(7.0, stacks["a"].crash)
        scheduler.run()
        assert membership.view.members == ("b", "c")
        assert managers["a"].removals_proposed == 0
        assert managers["b"].removals_proposed >= 1

    def test_in_flight_messages_flushed_before_removal(self):
        scheduler, faults, membership, stacks, agents, managers = make_cluster()
        for manager in managers.values():
            manager.start(duration=25.0)
        m1 = stacks["a"].osend("pre-crash")
        scheduler.call_at(5.0, faults.partition, {"a", "b"}, {"c"})
        scheduler.run()
        assert membership.view.members == ("a", "b")
        snapshots = {
            m: agents[m].flush_snapshot for m in ("a", "b")
        }
        assert snapshots["a"] == snapshots["b"]
        assert m1 in snapshots["a"]
