"""Tests for group membership and views."""

from __future__ import annotations

import pytest

from repro.errors import MembershipError
from repro.group.membership import GroupMembership, GroupView


class TestGroupView:
    def test_basic_properties(self):
        view = GroupView(0, ("a", "b", "c"))
        assert len(view) == 3
        assert "b" in view
        assert list(view) == ["a", "b", "c"]

    def test_duplicate_members_rejected(self):
        with pytest.raises(MembershipError):
            GroupView(0, ("a", "a"))

    def test_rank(self):
        view = GroupView(0, ("a", "b", "c"))
        assert view.rank("a") == 0
        assert view.rank("c") == 2

    def test_rank_of_stranger_raises(self):
        view = GroupView(0, ("a",))
        with pytest.raises(MembershipError):
            view.rank("z")

    def test_successor_wraps(self):
        view = GroupView(0, ("a", "b", "c"))
        assert view.successor("a") == "b"
        assert view.successor("c") == "a"

    def test_as_set(self):
        assert GroupView(0, ("a", "b")).as_set() == frozenset({"a", "b"})


class TestGroupMembership:
    def test_initial_view(self):
        membership = GroupMembership(["a", "b"])
        assert membership.view.view_id == 0
        assert membership.members == ("a", "b")

    def test_empty_group_rejected(self):
        with pytest.raises(MembershipError):
            GroupMembership([])

    def test_join_installs_new_view(self):
        membership = GroupMembership(["a"])
        view = membership.join("b")
        assert view.view_id == 1
        assert view.members == ("a", "b")

    def test_join_existing_member_rejected(self):
        membership = GroupMembership(["a"])
        with pytest.raises(MembershipError):
            membership.join("a")

    def test_leave(self):
        membership = GroupMembership(["a", "b"])
        view = membership.leave("a")
        assert view.members == ("b",)

    def test_leave_stranger_rejected(self):
        membership = GroupMembership(["a"])
        with pytest.raises(MembershipError):
            membership.leave("z")

    def test_cannot_remove_last_member(self):
        membership = GroupMembership(["a"])
        with pytest.raises(MembershipError):
            membership.leave("a")

    def test_listeners_notified_in_order(self):
        membership = GroupMembership(["a"])
        views = []
        membership.subscribe(views.append)
        membership.join("b")
        membership.join("c")
        assert [v.view_id for v in views] == [1, 2]

    def test_view_ids_strictly_increase(self):
        membership = GroupMembership(["a", "b", "c"])
        ids = [membership.view.view_id]
        membership.leave("c")
        ids.append(membership.view.view_id)
        membership.join("d")
        ids.append(membership.view.view_id)
        assert ids == sorted(set(ids))
