"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "counter" in out and "lock" in out

    def test_unknown_demo_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "nonsense"])

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "demos" in capsys.readouterr().out.lower()


class TestDemos:
    @pytest.mark.parametrize(
        "name", ["counter", "lock", "cardgame", "nameservice", "timeline"]
    )
    def test_demo_runs_clean(self, name, capsys):
        assert main(["demo", name, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_counter_demo_agrees(self, capsys):
        main(["demo", "counter"])
        assert "stable-point agreement: OK" in capsys.readouterr().out

    def test_lock_demo_consensus(self, capsys):
        main(["demo", "lock", "--members", "4", "--cycles", "2"])
        assert "consensus on holder sequence: True" in capsys.readouterr().out

    def test_demo_parameters_respected(self, capsys):
        main(["demo", "cardgame", "--members", "5", "--cycles", "2"])
        out = capsys.readouterr().out
        # Distances 1..5 are swept.
        assert out.count("\n") >= 7


class TestShard:
    def test_sharded_campaign_runs_clean(self, capsys):
        assert main(["shard", "--shards", "2", "--seeds", "1",
                     "--sessions", "3", "--ops", "6"]) == 0
        out = capsys.readouterr().out
        assert "sharded-1" in out
        assert "all consistent" in out

    def test_multiple_seeds_and_shards(self, capsys):
        assert main(["shard", "--shards", "3", "--seeds", "2",
                     "--sessions", "3", "--ops", "5",
                     "--disturbances", "crash"]) == 0
        out = capsys.readouterr().out
        assert "2 campaign(s) x 3 shard(s)" in out

    def test_unknown_disturbance_rejected(self, capsys):
        assert main(["shard", "--disturbances", "meteor"]) == 2
        assert "unknown disturbance" in capsys.readouterr().err

    def test_seed_determinism(self, capsys):
        main(["shard", "--seeds", "1", "--sessions", "3", "--ops", "6"])
        first = capsys.readouterr().out
        main(["shard", "--seeds", "1", "--sessions", "3", "--ops", "6"])
        second = capsys.readouterr().out
        # Summaries embed wall-clock time; compare everything before it.
        strip = lambda s: [line.split(" t=")[0] for line in s.splitlines()]
        assert strip(first) == strip(second)

    def test_no_rebalance_flag(self, capsys):
        assert main(["shard", "--shards", "2", "--seeds", "1",
                     "--sessions", "2", "--ops", "4",
                     "--no-rebalance"]) == 0
        assert "moves=0" in capsys.readouterr().out


class TestGraph:
    def test_ascii_rendering(self, capsys):
        assert main(["graph"]) == 0
        out = capsys.readouterr().out
        assert "‖{" in out and "*" in out

    def test_dot_rendering(self, capsys):
        assert main(["graph", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "->" in out

    def test_seed_determinism(self, capsys):
        main(["graph", "--seed", "9"])
        first = capsys.readouterr().out
        main(["graph", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestServeCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 7411)
        assert (args.shards, args.members) == (2, 3)
        assert args.stats is False

    def test_loadgen_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert (args.clients, args.ops, args.pipeline) == (8, 100, 8)
        assert args.read_every == 10
        assert args.reconnect_every == 0
        assert args.rate is None
        assert args.codec == "json"

    def test_serve_procs_flag(self):
        assert build_parser().parse_args(["serve"]).procs == 1
        args = build_parser().parse_args(["serve", "--procs", "4"])
        assert args.procs == 4

    def test_loadgen_codec_flag(self):
        args = build_parser().parse_args(["loadgen", "--codec", "binary"])
        assert args.codec == "binary"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--codec", "msgpack"])

    def test_serve_rejects_bad_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--port", "lots"])

    def test_chaos_wire_parser_defaults(self):
        args = build_parser().parse_args(["chaos-wire"])
        assert args.campaigns == "disconnects,stalls,truncations,overload"
        assert (args.procs, args.codec) == (1, "json")
        assert (args.clients, args.ops, args.runs) == (4, 20, 1)

    def test_chaos_wire_rejects_unknown_campaign(self, capsys):
        assert main(["chaos-wire", "--campaigns", "meteors"]) == 2
        assert "unknown campaign" in capsys.readouterr().out

    def test_chaos_wire_small_campaign_runs_clean(self, capsys):
        assert main([
            "chaos-wire", "--campaigns", "overload", "--seed", "5",
            "--clients", "2", "--ops", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "[ok] overload" in out
        assert "all clean" in out

    def test_loadgen_cli_against_live_server(self, capsys):
        import asyncio
        import threading

        from repro.serve import ServeServer

        started = threading.Event()
        holder = {}

        def serve_thread():
            async def body():
                srv = ServeServer(shards=2, members_per_shard=3, seed=2)
                await srv.start()
                holder["port"] = srv.port
                holder["stop"] = asyncio.Event()
                holder["loop"] = asyncio.get_running_loop()
                started.set()
                await holder["stop"].wait()
                await srv.shutdown()
                holder["violations"] = srv.session_guarantee_violations()

            asyncio.run(body())

        thread = threading.Thread(target=serve_thread)
        thread.start()
        assert started.wait(10)
        try:
            rc = main([
                "loadgen", "--port", str(holder["port"]),
                "--clients", "2", "--ops", "6", "--pipeline", "2",
                "--reconnect-every", "4",
            ])
        finally:
            holder["loop"].call_soon_threadsafe(holder["stop"].set)
            thread.join(15)
        assert rc == 0
        out = capsys.readouterr().out
        assert "ops/s" in out and "errors=0" in out
        assert holder["violations"] == []

    def test_loadgen_binary_codec_against_multiproc_server(self, capsys):
        """The CLI fast path end to end: ``--codec binary`` load against
        a multi-process server (the ``serve --procs 2`` topology)."""
        import asyncio
        import threading

        from repro.serve import MultiProcServeServer

        started = threading.Event()
        holder = {}

        def serve_thread():
            async def body():
                srv = MultiProcServeServer(
                    shards=2, members_per_shard=3, seed=2, procs=2
                )
                await srv.start()
                holder["port"] = srv.port
                holder["stop"] = asyncio.Event()
                holder["loop"] = asyncio.get_running_loop()
                started.set()
                await holder["stop"].wait()
                await srv.shutdown()
                holder["violations"] = srv.session_guarantee_violations()

            asyncio.run(body())

        thread = threading.Thread(target=serve_thread)
        thread.start()
        assert started.wait(30)
        try:
            rc = main([
                "loadgen", "--port", str(holder["port"]),
                "--clients", "2", "--ops", "6", "--pipeline", "2",
                "--codec", "binary",
            ])
        finally:
            holder["loop"].call_soon_threadsafe(holder["stop"].set)
            thread.join(30)
        assert rc == 0
        out = capsys.readouterr().out
        assert "ops/s" in out and "errors=0" in out
        assert holder["violations"] == []
