"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "counter" in out and "lock" in out

    def test_unknown_demo_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "nonsense"])

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "demos" in capsys.readouterr().out.lower()


class TestDemos:
    @pytest.mark.parametrize(
        "name", ["counter", "lock", "cardgame", "nameservice", "timeline"]
    )
    def test_demo_runs_clean(self, name, capsys):
        assert main(["demo", name, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_counter_demo_agrees(self, capsys):
        main(["demo", "counter"])
        assert "stable-point agreement: OK" in capsys.readouterr().out

    def test_lock_demo_consensus(self, capsys):
        main(["demo", "lock", "--members", "4", "--cycles", "2"])
        assert "consensus on holder sequence: True" in capsys.readouterr().out

    def test_demo_parameters_respected(self, capsys):
        main(["demo", "cardgame", "--members", "5", "--cycles", "2"])
        out = capsys.readouterr().out
        # Distances 1..5 are swept.
        assert out.count("\n") >= 7


class TestShard:
    def test_sharded_campaign_runs_clean(self, capsys):
        assert main(["shard", "--shards", "2", "--seeds", "1",
                     "--sessions", "3", "--ops", "6"]) == 0
        out = capsys.readouterr().out
        assert "sharded-1" in out
        assert "all consistent" in out

    def test_multiple_seeds_and_shards(self, capsys):
        assert main(["shard", "--shards", "3", "--seeds", "2",
                     "--sessions", "3", "--ops", "5",
                     "--disturbances", "crash"]) == 0
        out = capsys.readouterr().out
        assert "2 campaign(s) x 3 shard(s)" in out

    def test_unknown_disturbance_rejected(self, capsys):
        assert main(["shard", "--disturbances", "meteor"]) == 2
        assert "unknown disturbance" in capsys.readouterr().err

    def test_seed_determinism(self, capsys):
        main(["shard", "--seeds", "1", "--sessions", "3", "--ops", "6"])
        first = capsys.readouterr().out
        main(["shard", "--seeds", "1", "--sessions", "3", "--ops", "6"])
        second = capsys.readouterr().out
        # Summaries embed wall-clock time; compare everything before it.
        strip = lambda s: [line.split(" t=")[0] for line in s.splitlines()]
        assert strip(first) == strip(second)

    def test_no_rebalance_flag(self, capsys):
        assert main(["shard", "--shards", "2", "--seeds", "1",
                     "--sessions", "2", "--ops", "4",
                     "--no-rebalance"]) == 0
        assert "moves=0" in capsys.readouterr().out


class TestGraph:
    def test_ascii_rendering(self, capsys):
        assert main(["graph"]) == 0
        out = capsys.readouterr().out
        assert "‖{" in out and "*" in out

    def test_dot_rendering(self, capsys):
        assert main(["graph", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "->" in out

    def test_seed_determinism(self, capsys):
        main(["graph", "--seed", "9"])
        first = capsys.readouterr().out
        main(["graph", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second
