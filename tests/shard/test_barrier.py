"""Stable-point barrier reads: coverage, value folds, cross-closure."""

from __future__ import annotations

from repro.shard import ShardedCluster, StablePointBarrier
from repro.shard.ledger import DATA_KINDS

from tests.shard.test_router import key_for, quiet_cluster


class TestBarrierReads:
    def test_read_covers_all_settled_writes(self):
        cluster = quiet_cluster()
        k0, k1 = key_for(cluster, 0), key_for(cluster, 1)
        cluster.router.session("a").put(k0, "1")
        cluster.router.session("b").put(k1, "2")
        cluster.drain()
        done = []
        StablePointBarrier(
            cluster, cluster.shard_ids, on_complete=done.append
        ).start()
        cluster.drain()
        (read,) = done
        assert read.value == {k0: "1", k1: "2"}
        assert read.labels == set(cluster.issue_order[:2])
        assert read.rounds == 0

    def test_later_write_wins_the_fold(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        session = cluster.router.session("s")
        session.put(key, "old")
        session.put(key, "new")
        session.read(shards=(0,))
        cluster.drain()
        assert session.reads[0].value[key] == "new"

    def test_single_shard_read_ignores_other_shards(self):
        cluster = quiet_cluster()
        k0, k1 = key_for(cluster, 0), key_for(cluster, 1)
        session = cluster.router.session("s")
        session.put(k0, "x")
        session.put(k1, "y")
        session.read(shards=(1,))
        cluster.drain()
        (read,) = session.reads
        assert read.value == {k1: "y"}
        assert read.shards == (1,)

    def test_empty_cluster_read_is_empty(self):
        cluster = quiet_cluster()
        done = []
        StablePointBarrier(
            cluster, cluster.shard_ids, on_complete=done.append
        ).start()
        cluster.drain()
        assert done[0].value == {}

    def test_barrier_records_land_in_cluster_ledger(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        session.read()
        cluster.drain()
        kinds = {cluster.ops[l].kind for l in cluster.issue_order}
        assert kinds == {"barrier"}
        assert cluster.barriers_started == 1
        assert len(cluster.barrier_reads) == 1


class TestClosureInvariant:
    def test_covered_cuts_are_closed_under_cross_deps(self):
        """Any completed read's cut covers its own cross-shard ancestry."""
        cluster = quiet_cluster(shards=3, seed=2)
        sessions = [cluster.router.session(f"s{i}") for i in range(3)]
        for index, session in enumerate(sessions):
            session.put(key_for(cluster, index, salt=index), f"a{index}")
            session.put(
                key_for(cluster, (index + 1) % 3, salt=index + 3),
                f"b{index}",
            )
        for session in sessions:
            session.read()
        cluster.drain()
        for session in sessions:
            (read,) = session.reads
            touched = set(read.shards)
            for shard in read.shards:
                for label in read.covered[shard]:
                    for dep in cluster.ops[label].cross_deps:
                        dep_shard = cluster.shard_of_label[dep]
                        if (
                            dep_shard in touched
                            and cluster.ops[dep].kind in DATA_KINDS
                        ):
                            assert dep in read.covered[dep_shard]


class TestAbort:
    def test_read_aborts_when_shard_unreachable(self):
        cluster = quiet_cluster()
        for member in cluster.groups[1].members:
            cluster.groups[1].crash(member)
        session = cluster.router.session("s")
        session.read()
        cluster.drain()
        assert session.reads == []
        assert session.reads_failed == 1
        assert cluster.reads_failed == 1
        assert session.idle
