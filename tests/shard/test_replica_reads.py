"""Replica-read plumbing: coverage gate, per-key index, amnesia, caches.

The serving layer's read-anywhere routing stands on four cluster
primitives — ``covers`` (the eligibility gate), ``member_read`` (the
per-member LWW fold), ``read_members`` (who may serve), and the
``key_writes`` index they walk — plus two regressions this PR fixes:
``contact`` must not pick a just-restarted amnesiac, and the barrier
snapshot cache must be dropped on rebalance cutover and member restart.
"""

from __future__ import annotations

from tests.shard.test_rebalance import settle
from tests.shard.test_router import key_for, quiet_cluster


class TestKeyWritesIndex:
    def test_puts_append_in_issue_order(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        session = cluster.router.session("s")
        session.put(key, "v1")
        session.put(key, "v2")
        cluster.drain()
        assert cluster.key_writes[0][key] == list(cluster.issue_order)

    def test_migrate_indexes_every_moved_key(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("s").put(key, "v")
        cluster.drain()
        record = cluster.rebalancer.move_slot(
            cluster.shard_map.slot_of(key), 1
        )
        settle(cluster)
        assert record.migrate_label in cluster.key_writes[1][key]


class TestCoverageGate:
    def test_drained_member_covers_the_write(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("s").put(key, "v")
        cluster.drain()
        (label,) = cluster.issue_order
        for member in cluster.groups[0].members:
            assert cluster.covers(0, member, {label})

    def test_undelivered_label_is_not_covered(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        label = cluster.shard_send(
            0, "put", {"key": key, "value": "v"},
            occurs_after=frozenset(), cross_deps=frozenset(), session="s",
        )
        # No drain: the send is in flight, nobody has settled it.
        member = cluster.groups[0].members[0]
        assert not cluster.covers(0, member, {label})
        assert cluster.covers(0, member, frozenset())  # empty floor

    def test_member_read_returns_newest_settled_write(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        session = cluster.router.session("s")
        session.put(key, "old")
        session.put(key, "new")
        cluster.drain()
        member = cluster.contact(0)
        value, label = cluster.member_read(0, member, key)
        assert value == "new"
        assert label == cluster.issue_order[-1]

    def test_member_read_unknown_key_is_none(self):
        cluster = quiet_cluster()
        member = cluster.groups[0].members[0]
        assert cluster.member_read(0, member, "never-written") == (None, None)

    def test_member_read_serves_migrated_entry(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("s").put(key, "carried")
        cluster.drain()
        cluster.rebalancer.move_slot(cluster.shard_map.slot_of(key), 1)
        settle(cluster)
        member = cluster.contact(1)
        value, _label = cluster.member_read(1, member, key)
        assert value == "carried"


class TestReadMembers:
    def test_all_healthy_members_serve(self):
        cluster = quiet_cluster()
        group = cluster.groups[0]
        assert cluster.read_members(0) == list(group.members)

    def test_crashed_member_is_excluded(self):
        cluster = quiet_cluster()
        group = cluster.groups[0]
        group.crash(group.members[1])
        assert group.members[1] not in cluster.read_members(0)

    def test_read_contact_prefers_the_contact(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("s").put(key, "v")
        cluster.drain()
        (label,) = cluster.issue_order
        assert cluster.read_contact(0, frozenset()) == cluster.contact(0)
        assert cluster.read_contact(0, {label}) == cluster.contact(0)


class TestAmnesiacContact:
    """Regression: ``contact`` picked a just-restarted, empty replica.

    A restarted member replays its own outbox (so a write's *origin*
    self-recovers immediately); the amnesiac shape is a restarted member
    that only ever received — its settled prefix stays empty until
    anti-entropy refills it, so these tests route the write through a
    different member via ``shard_send(..., preferred=)``.
    """

    def _put_via(self, cluster, member):
        key = key_for(cluster, 0)
        label = cluster.shard_send(
            0, "put", {"key": key, "value": "v"},
            occurs_after=frozenset(), cross_deps=frozenset(),
            session="s", key=key, preferred=member,
        )
        assert label is not None
        cluster.drain()

    def test_contact_skips_restarted_member(self):
        cluster = quiet_cluster(shards=1)
        group = cluster.groups[0]
        first = group.members[0]
        self._put_via(cluster, group.members[1])
        assert cluster.contact(0) == first
        # Restart wipes the member's settled prefix; until anti-entropy
        # refills it, routing barrier reads through it would stall on a
        # replica that remembers nothing.
        group.crash(first)
        group.restart(first)
        contact = cluster.contact(0)
        assert contact is not None
        assert contact != first

    def test_contact_recovers_after_anti_entropy(self):
        cluster = quiet_cluster(shards=1)
        group = cluster.groups[0]
        first = group.members[0]
        self._put_via(cluster, group.members[1])
        group.crash(first)
        group.restart(first)
        settle(cluster)
        assert cluster.contact(0) == first

    def test_all_amnesiac_falls_back_to_first_up(self):
        cluster = quiet_cluster(shards=1)
        group = cluster.groups[0]
        origin = group.members[1]
        self._put_via(cluster, origin)
        # The origin stays down (its replay would self-recover it); the
        # other two come back amnesiac.  A group still needs *a* contact
        # to rebuild through, so the first-up fallback answers.
        group.crash(origin)
        for member in (group.members[0], group.members[2]):
            group.crash(member)
            group.restart(member)
        assert cluster.contact(0) == group.members[0]

    def test_read_members_excludes_amnesiac_when_fresh_exist(self):
        cluster = quiet_cluster(shards=1)
        group = cluster.groups[0]
        self._put_via(cluster, group.members[1])
        group.crash(group.members[0])
        group.restart(group.members[0])
        members = cluster.read_members(0)
        assert group.members[0] not in members
        assert members  # the other two still serve


class TestSnapshotCacheInvalidation:
    """Regression: PR-6's barrier snapshot cache survived topology churn."""

    def _populate(self, cluster):
        """One single-shard read per shard, so the cache holds two keys."""
        writer = cluster.router.session("w")
        writer.put(key_for(cluster, 0), "a")
        writer.put(key_for(cluster, 1), "b")
        cluster.drain()
        reader = cluster.router.session("r")
        reader.read(shards=(0,))
        reader.read(shards=(1,))
        settle(cluster)
        assert set(cluster._snapshot_cache) == {(0,), (1,)}

    def test_cutover_drops_source_and_dest_entries(self):
        cluster = quiet_cluster()
        self._populate(cluster)
        key = key_for(cluster, 0)
        cluster.rebalancer.move_slot(cluster.shard_map.slot_of(key), 1)
        settle(cluster)
        # The move touched both shards, so both cached cuts are stale
        # and must be gone.  (The transfer's own source-shard barrier
        # may briefly re-cache ``(0,)``, but the cutover that follows it
        # drops that too — nothing after the cutover re-caches.)
        assert (0,) not in cluster._snapshot_cache
        assert (1,) not in cluster._snapshot_cache

    def test_restart_drops_that_shards_entries(self):
        cluster = quiet_cluster()
        self._populate(cluster)
        group = cluster.groups[0]
        group.crash(group.members[0])
        group.restart(group.members[0])
        assert (0,) not in cluster._snapshot_cache
        assert (1,) in cluster._snapshot_cache  # untouched shard keeps its cut

    def test_explicit_invalidate_all(self):
        cluster = quiet_cluster()
        self._populate(cluster)
        cluster.invalidate_snapshots()
        assert cluster._snapshot_cache == {}

    def test_post_move_read_serves_moved_value(self):
        # Ground truth: with invalidation in place, a read issued right
        # after the cutover folds the moved entry, not a cached pre-move
        # world.
        cluster = quiet_cluster()
        self._populate(cluster)
        key = key_for(cluster, 0)
        session = cluster.router.session("w2")
        session.put(key, "newer")
        cluster.drain()
        cluster.rebalancer.move_slot(cluster.shard_map.slot_of(key), 1)
        settle(cluster)
        reader = cluster.router.session("r2")
        reader.read()
        settle(cluster)
        assert reader.reads[0].value[key] == "newer"
