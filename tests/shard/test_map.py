"""ShardMap: deterministic routing, versioned reassignment."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.shard import ShardMap


class TestLookups:
    def test_slot_of_is_stable_across_instances(self):
        first = ShardMap(3, num_slots=16)
        second = ShardMap(5, num_slots=16)
        for key in ("alpha", "beta", "k123", ""):
            assert first.slot_of(key) == second.slot_of(key)

    def test_default_assignment_round_robins(self):
        shard_map = ShardMap(3, num_slots=7)
        assert shard_map.assignment == (0, 1, 2, 0, 1, 2, 0)

    def test_shard_of_agrees_with_slot_chain(self):
        shard_map = ShardMap(4, num_slots=32)
        for key in (f"k{i}" for i in range(50)):
            slot = shard_map.slot_of(key)
            assert shard_map.shard_of(key) == shard_map.shard_for_slot(slot)

    def test_slots_of_partitions_the_ring(self):
        shard_map = ShardMap(3, num_slots=10)
        seen = sorted(
            slot
            for shard in range(3)
            for slot in shard_map.slots_of(shard)
        )
        assert seen == list(range(10))

    def test_unknown_slot_and_shard_rejected(self):
        shard_map = ShardMap(2, num_slots=4)
        with pytest.raises(ConfigurationError):
            shard_map.shard_for_slot(4)
        with pytest.raises(ConfigurationError):
            shard_map.slots_of(2)


class TestValidation:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigurationError):
            ShardMap(0)

    def test_slots_must_cover_shards(self):
        with pytest.raises(ConfigurationError):
            ShardMap(5, num_slots=3)

    def test_assignment_length_checked(self):
        with pytest.raises(ConfigurationError):
            ShardMap(2, num_slots=4, assignment=(0, 1))

    def test_assignment_targets_checked(self):
        with pytest.raises(ConfigurationError):
            ShardMap(2, num_slots=2, assignment=(0, 5))


class TestReassign:
    def test_reassign_bumps_version_and_moves_one_slot(self):
        shard_map = ShardMap(2, num_slots=4)
        moved = shard_map.reassign(1, 0)
        assert moved.version == shard_map.version + 1
        assert moved.assignment == (0, 0, 0, 1)
        # The original is untouched (maps are immutable values).
        assert shard_map.assignment == (0, 1, 0, 1)

    def test_keys_follow_their_slot(self):
        shard_map = ShardMap(2, num_slots=4)
        rng = random.Random(3)
        key = shard_map.sample_key(1, rng)
        slot = shard_map.slot_of(key)
        moved = shard_map.reassign(slot, 0)
        assert moved.shard_of(key) == 0
        assert moved.slot_of(key) == slot

    def test_reassign_bounds_checked(self):
        shard_map = ShardMap(2, num_slots=4)
        with pytest.raises(ConfigurationError):
            shard_map.reassign(9, 0)
        with pytest.raises(ConfigurationError):
            shard_map.reassign(0, 2)


class TestSampleKey:
    def test_sampled_key_routes_to_requested_shard(self):
        shard_map = ShardMap(4, num_slots=16)
        rng = random.Random(11)
        for shard in range(4):
            assert shard_map.shard_of(shard_map.sample_key(shard, rng)) == shard

    def test_sampling_is_deterministic_per_rng_state(self):
        shard_map = ShardMap(3, num_slots=8)
        assert shard_map.sample_key(2, random.Random(5)) == shard_map.sample_key(
            2, random.Random(5)
        )

    def test_shard_without_slots_rejected(self):
        shard_map = ShardMap(2, num_slots=2, assignment=(0, 0))
        with pytest.raises(ConfigurationError):
            shard_map.sample_key(1, random.Random(0))
