"""FrontierTracker: the incremental path ≡ the full rebuild, everywhere.

``ShardedCluster.delivered_frontier`` maintains each member's frontier
incrementally (one :meth:`FrontierTracker.note` per delivery) and falls
back to a full rebuild whenever the settled set mutates outside delivery
— restart wipes, anti-entropy stable-prefix skips, and the first query
of a lazily activated member.  Three layers pin the two paths to each
other label-for-label:

* unit tests on a hand-built diamond (the shadowing/eviction cases);
* a hypothesis property over random DAGs and random feed orders — the
  issue-index guard makes ``note`` order-robust, so the property is
  stated over *arbitrary* permutations, strictly stronger than the
  causal-delivery orders the cluster produces;
* an integration sweep over every crash-eligible broadcast protocol,
  checkpointing incremental trackers (fed from real ``on_deliver``
  upcalls) against fresh rebuilds across sends, a crash, a restart
  (post-restart rebuild), anti-entropy settling (stable-prefix skips),
  and a late-activated member (first-activation rebuild).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.chaos import CHAOS_PROTOCOLS, ChaosCluster
from repro.graph.depgraph import DependencyGraph
from repro.shard.frontier import FrontierTracker
from repro.types import MessageId


def label(n: int) -> MessageId:
    return MessageId(sender="p", seqno=n)


def diamond() -> DependencyGraph:
    """0 ≺ {1, 2} ≺ 3, with 4 concurrent to everything."""
    graph = DependencyGraph()
    graph.add(label(0))
    graph.add(label(1), {label(0)})
    graph.add(label(2), {label(0)})
    graph.add(label(3), {label(1), label(2)})
    graph.add(label(4))
    return graph


def tracker_for(graph: DependencyGraph) -> FrontierTracker:
    return FrontierTracker(graph.causal_past, lambda l: l.seqno)


class TestTrackerUnit:
    def test_note_evicts_shadowed_heads(self):
        tracker = tracker_for(diamond())
        for n in (0, 1, 2):
            tracker.note(label(n))
        assert tracker.labels() == {label(1), label(2)}
        tracker.note(label(3))
        assert tracker.labels() == {label(3)}

    def test_redelivered_ancestor_is_dropped(self):
        tracker = tracker_for(diamond())
        for n in (0, 1, 2, 3):
            tracker.note(label(n))
        tracker.note(label(1))  # replayed old label
        assert tracker.labels() == {label(3)}

    def test_concurrent_label_joins_the_frontier(self):
        tracker = tracker_for(diamond())
        for n in (0, 1, 2, 3, 4):
            tracker.note(label(n))
        assert tracker.labels() == {label(3), label(4)}

    def test_rebuild_matches_maximal_elements(self):
        graph = diamond()
        tracker = tracker_for(graph)
        labels = [label(n) for n in range(5)]
        tracker.rebuild(labels)
        assert tracker.labels() == graph.maximal_elements(labels)

    def test_reset_adopts_external_heads(self):
        tracker = tracker_for(diamond())
        tracker.reset({label(3): 3})
        assert tracker.labels() == {label(3)}


@st.composite
def random_dag_and_order(draw):
    """A random DAG (edges point from lower to higher seqno) plus a
    random permutation of a subset of its nodes to feed the tracker."""
    size = draw(st.integers(min_value=1, max_value=14))
    parents = {
        n: draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), max_size=3)
        ) if n else set()
        for n in range(size)
    }
    subset = draw(st.sets(st.integers(min_value=0, max_value=size - 1)))
    order = draw(st.permutations(sorted(subset)))
    return parents, order


class TestTrackerProperty:
    @settings(max_examples=200, deadline=None)
    @given(random_dag_and_order())
    def test_note_in_any_order_equals_rebuild(self, case):
        parents, order = case
        graph = DependencyGraph()
        for n in sorted(parents):
            graph.add(label(n), {label(p) for p in parents[n]})
        incremental = tracker_for(graph)
        for n in order:
            incremental.note(label(n))
        rebuilt = tracker_for(graph)
        rebuilt.rebuild(label(n) for n in order)
        fed = [label(n) for n in order]
        assert incremental.labels() == rebuilt.labels()
        assert rebuilt.labels() == graph.maximal_elements(fed)

    @settings(max_examples=100, deadline=None)
    @given(random_dag_and_order())
    def test_redelivery_changes_nothing(self, case):
        parents, order = case
        graph = DependencyGraph()
        for n in sorted(parents):
            graph.add(label(n), {label(p) for p in parents[n]})
        tracker = tracker_for(graph)
        for n in order:
            tracker.note(label(n))
        before = tracker.labels()
        for n in reversed(order):  # replay everything backwards
            tracker.note(label(n))
        assert tracker.labels() == before


class TestProtocolIntegration:
    """Incremental vs rebuild over real stacks, every eligible protocol."""

    MEMBERS = ("a", "b", "c")

    @pytest.mark.parametrize("protocol", sorted(CHAOS_PROTOCOLS))
    def test_incremental_tracks_rebuild_through_chaos(self, protocol):
        cluster = ChaosCluster(
            protocol=protocol,
            members=self.MEMBERS,
            seed=5,
            auto_membership=False,  # crashes must not evict from the view
        )
        graph = DependencyGraph()
        index_of: dict = {}
        trackers = {
            member: FrontierTracker(
                graph.causal_past, lambda l: index_of[l]
            )
            for member in self.MEMBERS
        }
        synced = {member: 0 for member in self.MEMBERS}
        # ``c`` activates late — its first checkpoint exercises exactly
        # the first-activation rebuild of ``delivered_frontier``.
        active = {"a", "b"}

        def feed(member):
            def hook(envelope):
                if member in active and envelope.msg_id in cluster.data_labels:
                    trackers[member].note(envelope.msg_id)
            return hook

        for member, stack in cluster.stacks.items():
            stack.on_deliver(feed(member))

        def send(member):
            sent = cluster.app_send(member)
            if sent is not None:
                graph.add(sent, cluster.dependencies[sent])
                index_of[sent] = len(index_of)
            return sent

        def checkpoint():
            for member in self.MEMBERS:
                if member not in active:
                    # Mirror lazy activation: rebuild on first query.
                    active.add(member)
                    synced[member] = -1
                stack = cluster.stacks[member]
                settled = stack._delivered_ids & cluster.data_labels
                if synced[member] != stack._settled_version:
                    # The settled set mutated outside delivery (restart
                    # wipe, stable-prefix skip) or the member was just
                    # activated: rebuild, exactly as the cluster does.
                    trackers[member].rebuild(settled)
                    synced[member] = stack._settled_version
                reference = FrontierTracker(
                    graph.causal_past, lambda l: index_of[l]
                )
                reference.rebuild(settled)
                assert trackers[member].labels() == reference.labels(), (
                    f"{protocol}/{member}: incremental diverged from rebuild"
                )
                assert reference.labels() == graph.maximal_elements(settled)

        # Quiet operation: interleaved sends, fully drained.
        for _ in range(3):
            send("a")
            send("b")
            cluster._drain()
        checkpoint()

        # Concurrent sends land while ``c`` is still inactive; its first
        # checkpoint below rebuilds from everything at once.
        send("a")
        send("c")
        cluster._drain()
        checkpoint()

        # Crash ``b``, keep writing, restart it, and settle: the restart
        # wipes b's settled prefix (version bump → rebuild) and
        # anti-entropy may refill it via stable-prefix skips, which
        # never pass through on_deliver.
        cluster.crash("b")
        send("a")
        send("c")
        cluster._drain()
        checkpoint()
        cluster.restart("b")
        violations, _rounds = cluster.settle()
        assert violations == []
        checkpoint()

        # Post-recovery traffic goes back to the incremental path.
        send("b")
        send("a")
        cluster._drain()
        checkpoint()
