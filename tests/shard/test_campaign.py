"""Sharded campaign generation and seeded end-to-end acceptance runs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.shard import (
    SHARDED_DISTURBANCES,
    ShardMap,
    ShardedCluster,
    sharded_campaign,
)

MEMBERS = {
    0: ("s0n0", "s0n1", "s0n2"),
    1: ("s1n0", "s1n1", "s1n2"),
}


def make_campaign(seed: int = 3, **overrides):
    return sharded_campaign(
        ShardMap(2, num_slots=16), MEMBERS, seed=seed, **overrides
    )


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert make_campaign(seed=4) == make_campaign(seed=4)
        assert make_campaign(seed=4) != make_campaign(seed=5)

    def test_events_sorted_by_time(self):
        times = [event.time for event in make_campaign().events]
        assert times == sorted(times)

    def test_fault_events_target_one_shard(self):
        campaign = make_campaign(disturbances=SHARDED_DISTURBANCES)
        for event in campaign.events:
            if event.action in ("op", "read", "rebalance"):
                continue
            shard, _arg = event.arg
            assert shard in MEMBERS

    def test_rebalance_lands_inside_first_crash_window(self):
        campaign = make_campaign(disturbances=("crash",))
        crashes = [e for e in campaign.events if e.action == "crash"]
        restarts = [e for e in campaign.events if e.action == "restart"]
        (move,) = [e for e in campaign.events if e.action == "rebalance"]
        assert crashes[0].time < move.time < restarts[0].time

    def test_rebalance_can_be_disabled(self):
        campaign = make_campaign(rebalance=False)
        assert not [e for e in campaign.events if e.action == "rebalance"]

    def test_ops_carry_keys_routed_by_initial_map(self):
        shard_map = ShardMap(2, num_slots=16)
        campaign = make_campaign(cross_fraction=0.0, read_fraction=0.0)
        ops = [e for e in campaign.events if e.action == "op"]
        assert ops
        for event in ops:
            _session, key, _value = event.arg
            assert shard_map.shard_of(key) in MEMBERS

    def test_bad_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            make_campaign(cross_fraction=1.5)
        with pytest.raises(ConfigurationError):
            make_campaign(read_fraction=-0.1)

    def test_shard_members_must_match_map(self):
        with pytest.raises(ConfigurationError):
            sharded_campaign(
                ShardMap(3, num_slots=16), MEMBERS, seed=0
            )

    def test_unknown_disturbance_rejected(self):
        with pytest.raises(ConfigurationError):
            make_campaign(disturbances=("meteor",))


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [0, 3, 5])
    def test_seeded_campaign_is_causally_consistent(self, seed):
        cluster = ShardedCluster(shards=2, members_per_shard=3, seed=seed)
        campaign = sharded_campaign(
            cluster.shard_map,
            {s: g.members for s, g in cluster.groups.items()},
            seed=seed,
            sessions=3,
            ops_per_session=8,
            cross_fraction=0.5,
            read_fraction=0.2,
        )
        result = cluster.run_campaign(campaign)
        assert result.ok, [str(v) for v in result.violations]
        assert result.ops > 0
        assert result.data_messages >= result.ops

    def test_full_disturbance_sweep(self):
        cluster = ShardedCluster(shards=3, members_per_shard=3, seed=9)
        campaign = sharded_campaign(
            cluster.shard_map,
            {s: g.members for s, g in cluster.groups.items()},
            seed=9,
            sessions=3,
            ops_per_session=8,
            disturbances=SHARDED_DISTURBANCES,
        )
        result = cluster.run_campaign(campaign)
        assert result.ok, [str(v) for v in result.violations]
        assert result.crashes >= 1
        assert "OK" in result.summary()
