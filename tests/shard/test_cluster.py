"""ShardedCluster plumbing: ledger, validation, watch, projection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.shard import ShardedCluster
from repro.types import MessageId

from tests.shard.test_router import key_for, quiet_cluster


class TestConstruction:
    def test_groups_are_disjoint_osend_stacks(self):
        cluster = ShardedCluster(shards=3, members_per_shard=2, seed=0)
        members = sorted(cluster.shard_of_member)
        assert members == ["s0n0", "s0n1", "s1n0", "s1n1", "s2n0", "s2n1"]
        assert {cluster.shard_of_member[m] for m in members} == {0, 1, 2}
        schedulers = {id(g.scheduler) for g in cluster.groups.values()}
        assert schedulers == {id(cluster.scheduler)}

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigurationError):
            ShardedCluster(shards=0)


class TestShardSendValidation:
    def test_foreign_occurs_after_rejected(self):
        cluster = quiet_cluster()
        cluster.router.session("s").put(key_for(cluster, 1), "v")
        cluster.drain()
        foreign = cluster.issue_order[0]  # lives on shard 1
        with pytest.raises(ProtocolError):
            cluster.shard_send(
                0, "put", {"key": "k", "value": "v"},
                occurs_after=frozenset({foreign}),
                cross_deps=frozenset(),
                session="s",
            )

    def test_in_group_cross_deps_rejected(self):
        cluster = quiet_cluster()
        cluster.router.session("s").put(key_for(cluster, 0), "v")
        cluster.drain()
        local = cluster.issue_order[0]
        with pytest.raises(ProtocolError):
            cluster.shard_send(
                0, "put", {"key": "k", "value": "v"},
                occurs_after=frozenset(),
                cross_deps=frozenset({local}),
                session="s",
            )

    def test_send_returns_none_when_group_down(self):
        cluster = quiet_cluster()
        for member in cluster.groups[0].members:
            cluster.groups[0].crash(member)
        label = cluster.shard_send(
            0, "put", {"key": "k", "value": "v"},
            occurs_after=frozenset(),
            cross_deps=frozenset(),
            session="s",
        )
        assert label is None


class TestWatch:
    def test_watch_fires_on_delivery(self):
        cluster = quiet_cluster()
        label = cluster.shard_send(
            0, "put", {"key": "k0", "value": "v"},
            occurs_after=frozenset(), cross_deps=frozenset(), session="s",
        )
        fired = []
        cluster.watch(label, fired.append)
        assert fired == []
        cluster.drain()
        assert len(fired) == 1
        assert cluster.shard_of_member[fired[0]] == 0

    def test_watch_fires_immediately_when_already_settled(self):
        cluster = quiet_cluster()
        label = cluster.shard_send(
            0, "put", {"key": "k0", "value": "v"},
            occurs_after=frozenset(), cross_deps=frozenset(), session="s",
        )
        cluster.drain()
        fired = []
        cluster.watch(label, fired.append)
        assert len(fired) == 1


class TestCausalUtilities:
    def test_maximal_prunes_dominated_labels(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        key = key_for(cluster, 0)
        session.put(key, "a")
        session.put(key, "b")
        cluster.drain()
        first, second = cluster.issue_order
        assert cluster.maximal({first, second}) == frozenset({second})

    def test_project_follows_cross_edges(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        session.put(key_for(cluster, 0), "a")
        session.put(key_for(cluster, 1), "b")
        cluster.drain()
        first, second = cluster.issue_order
        # Projecting the shard-1 label back onto shard 0 must surface the
        # shard-0 ancestor it was stamped with.
        assert cluster.project((second,), 0) == frozenset({first})
        assert cluster.project((second,), 1) == frozenset({second})

    def test_delivered_frontier_is_maximal(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        key = key_for(cluster, 0)
        session.put(key, "a")
        session.put(key, "b")
        cluster.drain()
        _, second = cluster.issue_order
        contact = cluster.contact(0)
        assert cluster.delivered_frontier(0, contact) == frozenset({second})

    def test_contact_skips_crashed_members(self):
        cluster = quiet_cluster()
        group = cluster.groups[0]
        assert cluster.contact(0) == group.members[0]
        group.crash(group.members[0])
        assert cluster.contact(0) == group.members[1]
        for member in group.members[1:]:
            group.crash(member)
        assert cluster.contact(0) is None


class TestQuiescentAudit:
    def test_clean_run_settles_with_no_violations(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        session.put(key_for(cluster, 0), "a")
        session.put(key_for(cluster, 1), "b")
        session.read()
        cluster.drain()
        violations, rounds = cluster.settle()
        assert violations == []
        assert cluster.converged()
        assert cluster.check_invariants() == []

    def test_unknown_label_watch_raises(self):
        cluster = quiet_cluster()
        with pytest.raises(KeyError):
            cluster.watch(MessageId("ghost", 0), lambda member: None)
