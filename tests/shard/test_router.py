"""Session layer: frontier tracking, dependency stamping, slot freezes."""

from __future__ import annotations

from repro.shard import ShardedCluster


def quiet_cluster(shards: int = 2, seed: int = 0) -> ShardedCluster:
    return ShardedCluster(shards=shards, members_per_shard=3, seed=seed)


def key_for(cluster: ShardedCluster, shard: int, salt: int = 0) -> str:
    """The lexically first deterministic key routing to ``shard``."""
    index = salt * 10_000
    while True:
        key = f"k{index}"
        if cluster.shard_map.shard_of(key) == shard:
            return key
        index += 1


class TestPuts:
    def test_put_routes_to_owning_shard(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        key = key_for(cluster, 1)
        session.put(key, "v1")
        cluster.drain()
        (label,) = cluster.issue_order
        assert cluster.ops[label].shard == 1
        assert cluster.ops[label].key == key

    def test_same_shard_writes_chain_occurs_after(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        key = key_for(cluster, 0)
        session.put(key, "v1")
        session.put(key, "v2")
        cluster.drain()
        first, second = cluster.issue_order
        assert cluster.ops[second].deps == frozenset({first})
        assert session.frontier[0] == frozenset({second})

    def test_cross_shard_write_stamps_cross_deps(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        session.put(key_for(cluster, 0), "a")
        session.put(key_for(cluster, 1), "b")
        cluster.drain()
        first, second = cluster.issue_order
        record = cluster.ops[second]
        assert record.shard == 1
        assert record.deps == frozenset()  # no earlier shard-1 write
        assert record.cross_deps == frozenset({first})

    def test_independent_sessions_do_not_share_frontiers(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("a").put(key, "va")
        cluster.drain()
        cluster.router.session("b").put(key, "vb")
        cluster.drain()
        _, second = cluster.issue_order
        assert cluster.ops[second].deps == frozenset()

    def test_session_batches_record_issue_order(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        session.put(key_for(cluster, 0), "a")
        session.put(key_for(cluster, 1), "b")
        cluster.drain()
        assert cluster.session_batches["s"] == [
            [cluster.issue_order[0]],
            [cluster.issue_order[1]],
        ]


class TestReads:
    def test_read_sees_own_writes(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        k0, k1 = key_for(cluster, 0), key_for(cluster, 1)
        session.put(k0, "x")
        session.put(k1, "y")
        session.read()
        cluster.drain()
        (read,) = session.reads
        assert read.value == {k0: "x", k1: "y"}

    def test_read_absorbs_foreign_past_into_frontier(self):
        cluster = quiet_cluster()
        writer = cluster.router.session("w")
        k0 = key_for(cluster, 0)
        writer.put(k0, "x")
        cluster.drain()
        reader = cluster.router.session("r")
        reader.read()
        cluster.drain()
        put_label = cluster.issue_order[0]
        # The reader's next shard-0 write must causally follow the put it
        # observed, even though another session issued it.
        reader.put(k0, "y")
        cluster.drain()
        record = cluster.ops[cluster.issue_order[-1]]
        assert any(
            dep == put_label or cluster.graph.precedes(put_label, dep)
            for dep in record.deps
        )

    def test_reads_are_fifo_with_writes(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        k0 = key_for(cluster, 0)
        seen = []
        session.put(k0, "before")
        session.read(callback=lambda read: seen.append(read.value[k0]))
        session.put(k0, "after")
        cluster.drain()
        assert seen == ["before"]
        assert session.idle


class TestSlotFreeze:
    def test_frozen_slot_blocks_then_resumes(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        key = key_for(cluster, 0)
        slot = cluster.shard_map.slot_of(key)
        cluster.router.freeze_slot(slot)
        session.put(key, "v")
        cluster.scheduler.run_until(5.0)
        assert session.ops_issued == 0
        assert not session.idle
        cluster.router.unfreeze_slot(slot)
        cluster.drain()
        assert session.ops_issued == 1
        assert session.idle

    def test_handoff_dep_injected_after_unfreeze(self):
        cluster = quiet_cluster()
        fence = cluster.router.session("fence")
        key = key_for(cluster, 0)
        fence.put(key, "pre")
        cluster.drain()
        fence_label = cluster.issue_order[0]
        slot = cluster.shard_map.slot_of(key)
        cluster.router.freeze_slot(slot)
        cluster.router.unfreeze_slot(slot, handoff=fence_label)
        other = cluster.router.session("other")
        other.put(key, "post")
        cluster.drain()
        record = cluster.ops[cluster.issue_order[-1]]
        assert fence_label in record.deps

    def test_unreachable_shard_exhausts_attempts(self):
        cluster = quiet_cluster()
        for member in cluster.groups[0].members:
            cluster.groups[0].crash(member)
        session = cluster.router.session("s")
        session.put(key_for(cluster, 0), "v")
        cluster.drain()  # 240 one-second retries, then the op is dropped
        assert session.ops_issued == 0
        assert session.ops_skipped == 1
        assert session.idle


class TestSessionTokens:
    def fill(self, cluster, session, count: int = 3):
        for index in range(count):
            shard = index % len(cluster.shard_ids)
            session.put(key_for(cluster, shard, salt=index), f"v{index}")
        cluster.drain()

    def test_round_trip_restores_frontier(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        self.fill(cluster, session)
        token = session.export_token()
        fresh = cluster.router.session("fresh")
        assert fresh.import_token(token) == frozenset()
        assert fresh.frontier == session.frontier

    def test_token_is_versioned_json(self):
        import json

        from repro.shard.router import TOKEN_VERSION

        cluster = quiet_cluster()
        session = cluster.router.session("s")
        self.fill(cluster, session)
        document = json.loads(session.export_token())
        assert document["v"] == TOKEN_VERSION
        assert document["session"] == "s"
        assert set(document["frontier"]) <= {"0", "1"}

    def test_export_is_deterministic(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        self.fill(cluster, session)
        assert session.export_token() == session.export_token()

    def test_import_chains_next_write_after_token_frontier(self):
        cluster = quiet_cluster()
        writer = cluster.router.session("writer")
        key = key_for(cluster, 0)
        writer.put(key, "first")
        cluster.drain()
        first = cluster.issue_order[0]
        heir = cluster.router.session("heir")
        heir.import_token(writer.export_token())
        heir.put(key, "second")
        cluster.drain()
        record = cluster.ops[cluster.issue_order[-1]]
        assert first in record.deps

    def test_unknown_version_rejected(self):
        import json

        import pytest

        from repro.errors import ProtocolError

        cluster = quiet_cluster()
        session = cluster.router.session("s")
        self.fill(cluster, session)
        document = json.loads(session.export_token())
        document["v"] = 99
        with pytest.raises(ProtocolError, match="version"):
            cluster.router.session("t").import_token(json.dumps(document))

    def test_malformed_tokens_rejected(self):
        import pytest

        from repro.errors import ProtocolError

        session = quiet_cluster().router.session("s")
        for bad in ("{not json", '"a string"', '{"v":1}',
                    '{"v":1,"frontier":{"0":[["a"]]}}'):
            with pytest.raises(ProtocolError):
                session.import_token(bad)

    def test_unknown_shard_rejected(self):
        import pytest

        from repro.errors import ProtocolError

        cluster = quiet_cluster(shards=2)
        session = cluster.router.session("s")
        with pytest.raises(ProtocolError, match="unknown shard"):
            session.import_token(
                '{"v":1,"session":"s","frontier":{"7":[["s7n0",1]]}}'
            )

    def test_unknown_labels_dropped_and_reported(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        key = key_for(cluster, 0)
        session.put(key, "v")
        cluster.drain()
        known = cluster.issue_order[0]
        from repro.types import MessageId

        ghost = MessageId("never-issued", 42)
        token = (
            '{"v":1,"session":"s","frontier":{"0":'
            f'[["{known.sender}",{known.seqno}],'
            f'["{ghost.sender}",{ghost.seqno}]]}}}}'
        )
        fresh = cluster.router.session("fresh")
        dropped = fresh.import_token(token)
        assert dropped == frozenset({ghost})
        assert fresh.frontier[0] == frozenset({known})

    def test_import_merges_with_existing_frontier(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        old = cluster.router.session("old")
        old.put(key, "v1")
        cluster.drain()
        token = old.export_token()
        merged = cluster.router.session("merged")
        merged.put(key, "v2")  # occurs-after v1? no — independent session
        cluster.drain()
        merged.import_token(token)
        # Both writes are concurrent maximal elements of the frontier.
        assert merged.frontier[0] == frozenset(cluster.issue_order[:2])
