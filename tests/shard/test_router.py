"""Session layer: frontier tracking, dependency stamping, slot freezes."""

from __future__ import annotations

from repro.shard import ShardedCluster


def quiet_cluster(shards: int = 2, seed: int = 0) -> ShardedCluster:
    return ShardedCluster(shards=shards, members_per_shard=3, seed=seed)


def key_for(cluster: ShardedCluster, shard: int, salt: int = 0) -> str:
    """The lexically first deterministic key routing to ``shard``."""
    index = salt * 10_000
    while True:
        key = f"k{index}"
        if cluster.shard_map.shard_of(key) == shard:
            return key
        index += 1


class TestPuts:
    def test_put_routes_to_owning_shard(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        key = key_for(cluster, 1)
        session.put(key, "v1")
        cluster.drain()
        (label,) = cluster.issue_order
        assert cluster.ops[label].shard == 1
        assert cluster.ops[label].key == key

    def test_same_shard_writes_chain_occurs_after(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        key = key_for(cluster, 0)
        session.put(key, "v1")
        session.put(key, "v2")
        cluster.drain()
        first, second = cluster.issue_order
        assert cluster.ops[second].deps == frozenset({first})
        assert session.frontier[0] == frozenset({second})

    def test_cross_shard_write_stamps_cross_deps(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        session.put(key_for(cluster, 0), "a")
        session.put(key_for(cluster, 1), "b")
        cluster.drain()
        first, second = cluster.issue_order
        record = cluster.ops[second]
        assert record.shard == 1
        assert record.deps == frozenset()  # no earlier shard-1 write
        assert record.cross_deps == frozenset({first})

    def test_independent_sessions_do_not_share_frontiers(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("a").put(key, "va")
        cluster.drain()
        cluster.router.session("b").put(key, "vb")
        cluster.drain()
        _, second = cluster.issue_order
        assert cluster.ops[second].deps == frozenset()

    def test_session_batches_record_issue_order(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        session.put(key_for(cluster, 0), "a")
        session.put(key_for(cluster, 1), "b")
        cluster.drain()
        assert cluster.session_batches["s"] == [
            [cluster.issue_order[0]],
            [cluster.issue_order[1]],
        ]


class TestReads:
    def test_read_sees_own_writes(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        k0, k1 = key_for(cluster, 0), key_for(cluster, 1)
        session.put(k0, "x")
        session.put(k1, "y")
        session.read()
        cluster.drain()
        (read,) = session.reads
        assert read.value == {k0: "x", k1: "y"}

    def test_read_absorbs_foreign_past_into_frontier(self):
        cluster = quiet_cluster()
        writer = cluster.router.session("w")
        k0 = key_for(cluster, 0)
        writer.put(k0, "x")
        cluster.drain()
        reader = cluster.router.session("r")
        reader.read()
        cluster.drain()
        put_label = cluster.issue_order[0]
        # The reader's next shard-0 write must causally follow the put it
        # observed, even though another session issued it.
        reader.put(k0, "y")
        cluster.drain()
        record = cluster.ops[cluster.issue_order[-1]]
        assert any(
            dep == put_label or cluster.graph.precedes(put_label, dep)
            for dep in record.deps
        )

    def test_reads_are_fifo_with_writes(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        k0 = key_for(cluster, 0)
        seen = []
        session.put(k0, "before")
        session.read(callback=lambda read: seen.append(read.value[k0]))
        session.put(k0, "after")
        cluster.drain()
        assert seen == ["before"]
        assert session.idle


class TestSlotFreeze:
    def test_frozen_slot_blocks_then_resumes(self):
        cluster = quiet_cluster()
        session = cluster.router.session("s")
        key = key_for(cluster, 0)
        slot = cluster.shard_map.slot_of(key)
        cluster.router.freeze_slot(slot)
        session.put(key, "v")
        cluster.scheduler.run_until(5.0)
        assert session.ops_issued == 0
        assert not session.idle
        cluster.router.unfreeze_slot(slot)
        cluster.drain()
        assert session.ops_issued == 1
        assert session.idle

    def test_handoff_dep_injected_after_unfreeze(self):
        cluster = quiet_cluster()
        fence = cluster.router.session("fence")
        key = key_for(cluster, 0)
        fence.put(key, "pre")
        cluster.drain()
        fence_label = cluster.issue_order[0]
        slot = cluster.shard_map.slot_of(key)
        cluster.router.freeze_slot(slot)
        cluster.router.unfreeze_slot(slot, handoff=fence_label)
        other = cluster.router.session("other")
        other.put(key, "post")
        cluster.drain()
        record = cluster.ops[cluster.issue_order[-1]]
        assert fence_label in record.deps

    def test_unreachable_shard_exhausts_attempts(self):
        cluster = quiet_cluster()
        for member in cluster.groups[0].members:
            cluster.groups[0].crash(member)
        session = cluster.router.session("s")
        session.put(key_for(cluster, 0), "v")
        cluster.drain()  # 240 one-second retries, then the op is dropped
        assert session.ops_issued == 0
        assert session.ops_skipped == 1
        assert session.idle
