"""Slot moves: drain -> transfer -> cutover, and the routing audit."""

from __future__ import annotations

from repro.shard import ShardedCluster, sharded_campaign

from tests.shard.test_router import key_for, quiet_cluster


def settle(cluster: ShardedCluster) -> None:
    cluster.drain()
    violations, _rounds = cluster.settle()
    assert violations == []


class TestMoveSlot:
    def test_move_relocates_keys_and_bumps_version(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("s").put(key, "v")
        cluster.drain()
        slot = cluster.shard_map.slot_of(key)
        record = cluster.rebalancer.move_slot(slot, 1)
        settle(cluster)
        assert record.phase == "done"
        assert record.entries == 1
        assert cluster.shard_map.version == 1
        assert cluster.shard_map.shard_of(key) == 1

    def test_migrate_record_carries_moved_labels_as_cross_deps(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("s").put(key, "v")
        cluster.drain()
        put_label = cluster.issue_order[0]
        record = cluster.rebalancer.move_slot(
            cluster.shard_map.slot_of(key), 1
        )
        settle(cluster)
        migrate = cluster.ops[record.migrate_label]
        assert migrate.kind == "migrate"
        assert migrate.shard == 1
        assert put_label in migrate.cross_deps

    def test_value_survives_the_move(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("w").put(key, "carried")
        cluster.drain()
        cluster.rebalancer.move_slot(cluster.shard_map.slot_of(key), 1)
        settle(cluster)
        reader = cluster.router.session("r")
        reader.read()
        settle(cluster)
        assert reader.reads[0].value[key] == "carried"

    def test_post_move_writes_route_to_dest_with_handoff(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        cluster.router.session("w").put(key, "old")
        cluster.drain()
        record = cluster.rebalancer.move_slot(
            cluster.shard_map.slot_of(key), 1
        )
        settle(cluster)
        cluster.router.session("other").put(key, "new")
        settle(cluster)
        put = cluster.ops[cluster.issue_order[-1]]
        assert put.shard == 1
        assert record.migrate_label in put.deps
        assert cluster.check_invariants() == []

    def test_blocked_session_resumes_onto_dest_after_cutover(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        session = cluster.router.session("s")
        session.put(key, "seed")
        cluster.drain()
        cluster.rebalancer.move_slot(cluster.shard_map.slot_of(key), 1)
        session.put(key, "during-move")
        settle(cluster)
        assert session.idle
        put = cluster.ops[cluster.issue_order[-1]]
        assert put.shard == 1
        assert put.value == {"key": key, "value": "during-move"}

    def test_noop_move_completes_without_traffic(self):
        cluster = quiet_cluster()
        slot = cluster.shard_map.slots_of(0)[0]
        record = cluster.rebalancer.move_slot(slot, 0)
        assert record.phase == "done"
        assert cluster.issue_order == []
        assert cluster.shard_map.version == 0

    def test_move_aborts_when_source_unreachable(self):
        cluster = quiet_cluster()
        for member in cluster.groups[0].members:
            cluster.groups[0].crash(member)
        slot = cluster.shard_map.slots_of(0)[0]
        record = cluster.rebalancer.move_slot(slot, 1)
        cluster.drain()
        assert record.phase == "aborted"
        assert not cluster.router.slot_frozen(slot)
        assert cluster.shard_map.version == 0


class TestRoutingAudit:
    def test_stale_route_after_cutover_is_flagged(self):
        cluster = quiet_cluster()
        key = key_for(cluster, 0)
        slot = cluster.shard_map.slot_of(key)
        cluster.rebalancer.move_slot(slot, 1)
        settle(cluster)
        # Bypass the router and write the moved slot on its *old* group.
        cluster.shard_send(
            0,
            "put",
            {"key": key, "value": "stale"},
            occurs_after=frozenset(),
            cross_deps=frozenset(),
            session="rogue",
            key=key,
            slot=slot,
        )
        cluster.drain()
        violations = cluster._check_routing()
        assert len(violations) == 1
        assert violations[0].invariant == "shard-routing"


class TestRebalanceUnderChaos:
    def test_rebalance_overlapping_crash_stays_consistent(self):
        """Acceptance: a slot move inside a crash window, fully audited."""
        cluster = ShardedCluster(shards=3, members_per_shard=3, seed=1)
        campaign = sharded_campaign(
            cluster.shard_map,
            {s: g.members for s, g in cluster.groups.items()},
            seed=1,
            sessions=4,
            ops_per_session=10,
            cross_fraction=0.5,
            read_fraction=0.2,
        )
        crash_times = {
            e.time: e.arg[0]
            for e in campaign.events
            if e.action == "crash"
        }
        moves = [e for e in campaign.events if e.action == "rebalance"]
        assert moves and crash_times, "campaign must overlap a move and a crash"
        result = cluster.run_campaign(campaign)
        assert result.ok, [str(v) for v in result.violations]
        assert result.rebalances == 1
        assert result.crashes >= 1
