"""Tests for the conferencing (document annotation) application."""

from __future__ import annotations

from repro.apps.conference import (
    ConferenceSystem,
    document_machine,
    document_spec,
)
from repro.net.latency import UniformLatency
from repro.types import Message, MessageId


class TestMachine:
    def test_annotate_accumulates_notes(self):
        machine = document_machine()
        state = machine.initial_state
        state = machine.apply(
            state,
            Message(MessageId("t", 0), "annotate", {"paragraph": "p1", "note": "a"}),
        )
        state = machine.apply(
            state,
            Message(MessageId("t", 1), "annotate", {"paragraph": "p1", "note": "b"}),
        )
        paragraphs = {p: (text, notes) for p, text, notes in state}
        assert paragraphs["p1"][1] == frozenset({"a", "b"})

    def test_edit_replaces_text_keeps_notes(self):
        machine = document_machine()
        state = machine.initial_state
        state = machine.apply(
            state,
            Message(MessageId("t", 0), "annotate", {"paragraph": "p1", "note": "n"}),
        )
        state = machine.apply(
            state,
            Message(MessageId("t", 1), "edit", {"paragraph": "p1", "text": "v2"}),
        )
        paragraphs = {p: (text, notes) for p, text, notes in state}
        assert paragraphs["p1"] == ("v2", frozenset({"n"}))

    def test_annotations_commute_as_set_union(self):
        machine = document_machine()
        m1 = Message(MessageId("t", 0), "annotate", {"paragraph": "p", "note": "a"})
        m2 = Message(MessageId("t", 1), "annotate", {"paragraph": "p", "note": "b"})
        s0 = machine.initial_state
        forward = machine.apply(machine.apply(s0, m1), m2)
        backward = machine.apply(machine.apply(s0, m2), m1)
        assert forward == backward

    def test_spec(self):
        spec = document_spec()
        a1 = Message(MessageId("t", 0), "annotate", {"paragraph": "p", "note": "x"})
        a2 = Message(MessageId("t", 1), "annotate", {"paragraph": "p", "note": "y"})
        e1 = Message(MessageId("t", 2), "edit", {"paragraph": "p", "text": "t"})
        e2 = Message(MessageId("t", 3), "edit", {"paragraph": "q", "text": "t"})
        assert spec.commute(a1, a2)
        assert not spec.commute(a1, e1)
        assert spec.commute(a1, e2)  # different paragraphs


class TestSystem:
    def test_windows_converge_after_annotations(self):
        conference = ConferenceSystem(
            ["u1", "u2", "u3"], latency=UniformLatency(0.2, 2.0), seed=1
        )
        conference.annotate("u1", "p1", "typo in line 3")
        conference.annotate("u2", "p1", "needs citation")
        conference.annotate("u3", "p2", "great point")
        conference.run()
        assert conference.windows_converged()
        window = conference.window("u1")
        assert window["p1"][1] == frozenset({"typo in line 3", "needs citation"})

    def test_edit_acts_as_sync_point(self):
        conference = ConferenceSystem(
            ["u1", "u2"], latency=UniformLatency(0.2, 2.0), seed=2
        )
        conference.annotate("u1", "p1", "note")
        conference.edit("u1", "p1", "revised text")
        conference.run()
        for replica in conference.system.replicas.values():
            assert replica.stable_point_count == 1

    def test_window_shows_current_document(self):
        conference = ConferenceSystem(["u1", "u2"], seed=3)
        conference.edit("u1", "intro", "Hello world")
        conference.run()
        assert conference.window("u2")["intro"][0] == "Hello world"
