"""Property-based tests across the applications.

Randomized workloads against the app-level invariants: the name
service's staleness flag always covers divergence; the conference and
file-service documents always converge once traffic quiesces; the lock
service reaches consensus for arbitrary sizes/seeds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.conference import ConferenceSystem
from repro.apps.file_service import FileService
from repro.apps.lock_service import LockService
from repro.apps.name_service import NameServiceSystem
from repro.net.latency import UniformLatency

NS_MEMBERS = ["n1", "n2", "n3"]


class TestNameServiceProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 50_000),
        script=st.lists(
            st.tuples(
                st.sampled_from(NS_MEMBERS),
                st.sampled_from(["qry", "upd"]),
                st.sampled_from(["www", "db"]),
            ),
            min_size=1,
            max_size=14,
        ),
    )
    def test_flagged_always_covers_inconsistent(self, seed, script):
        system = NameServiceSystem(
            NS_MEMBERS,
            engine="causal",
            latency=UniformLatency(0.1, 4.0),
            seed=seed,
        )
        version = 0
        for index, (member, operation, name) in enumerate(script):
            target = system.members[member]
            if operation == "upd":
                version += 1
                system.scheduler.call_at(
                    index * 0.5, target.update, name, f"v{version}"
                )
            else:
                system.scheduler.call_at(index * 0.5, target.query, name)
        system.run()
        inconsistent = set(system.inconsistent_queries())
        flagged = set(system.flagged_queries())
        assert inconsistent <= flagged

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_total_engine_never_diverges(self, seed):
        system = NameServiceSystem(
            NS_MEMBERS,
            engine="total",
            latency=UniformLatency(0.1, 4.0),
            seed=seed,
        )
        for index in range(8):
            member = system.members[NS_MEMBERS[index % 3]]
            if index % 3 == 0:
                system.scheduler.call_at(
                    index * 0.5, member.update, "www", f"v{index}"
                )
            else:
                system.scheduler.call_at(index * 0.5, member.query, "www")
        system.run()
        assert system.inconsistent_queries() == []


class TestDocumentProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 50_000),
        notes=st.lists(
            st.tuples(
                st.sampled_from(["u1", "u2", "u3"]),
                st.sampled_from(["p1", "p2"]),
                st.integers(0, 99),
            ),
            min_size=1,
            max_size=10,
        ),
    )
    def test_annotations_always_converge(self, seed, notes):
        conference = ConferenceSystem(
            ["u1", "u2", "u3"],
            latency=UniformLatency(0.1, 3.0),
            seed=seed,
        )
        for user, paragraph, note in notes:
            conference.annotate(user, paragraph, f"note-{note}")
        conference.run()
        assert conference.windows_converged()
        # Every note is present in the final window.
        window = conference.window("u1")
        seen_notes = {
            note for _, notes_set in window.values() for note in notes_set
        }
        assert seen_notes == {f"note-{n}" for _, __, n in notes}


class TestFileServiceProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 50_000),
        records=st.lists(
            st.tuples(st.sampled_from(["s1", "s2"]), st.integers(0, 50)),
            min_size=1,
            max_size=8,
            unique_by=lambda t: t[1],
        ),
    )
    def test_appends_from_any_server_all_land(self, seed, records):
        service = FileService(
            ["s1", "s2"], latency=UniformLatency(0.1, 3.0), seed=seed
        )
        for server, n in records:
            service.append(server, "/log", f"r{n}")
        service.run()
        assert service.converged()
        _, appended = service.file_at("s1", "/log")
        assert appended == {f"r{n}" for _, n in records}


class TestLockServiceProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 50_000),
        size=st.integers(2, 6),
        cycles=st.integers(1, 3),
    )
    def test_consensus_for_arbitrary_configurations(self, seed, size, cycles):
        members = [f"m{i}" for i in range(size)]
        service = LockService(
            members,
            cycles=cycles,
            access_time=0.3,
            latency=UniformLatency(0.1, 1.5),
            seed=seed,
        )
        service.run()
        assert service.consensus_reached()
        assert service.total_acquisitions() == cycles * size
