"""Tests for the card game (Section 5.1 relaxed-ordering example)."""

from __future__ import annotations

import pytest

from repro.apps.card_game import CardGame
from repro.errors import ConfigurationError
from repro.net.latency import UniformLatency


def play(distance: int, rounds: int = 3, seed: int = 3) -> CardGame:
    game = CardGame(
        ["p0", "p1", "p2", "p3"],
        rounds=rounds,
        dependency_distance=distance,
        latency=UniformLatency(0.2, 1.0),
        seed=seed,
    )
    game.play()
    return game


class TestSchedule:
    def test_owner_rotation(self):
        game = CardGame(["p0", "p1"], rounds=2)
        assert game.owner_of(0) == "p0"
        assert game.owner_of(1) == "p1"
        assert game.owner_of(2) == "p0"
        assert game.total_turns == 4

    def test_turns_owned_by(self):
        game = CardGame(["p0", "p1"], rounds=2)
        assert game.turns_owned_by("p1") == [1, 3]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CardGame(["p0"], rounds=0)
        with pytest.raises(ConfigurationError):
            CardGame(["p0"], rounds=1, dependency_distance=0)


class TestGamePlay:
    def test_all_turns_played_and_seen(self):
        game = play(distance=2)
        assert game.all_windows_converged()
        assert game.completion_time is not None
        assert len(game.turn_labels) == game.total_turns

    def test_strict_order_has_no_concurrency(self):
        game = play(distance=1)
        assert game.concurrency_degree() == 0

    def test_relaxed_order_has_concurrency(self):
        game = play(distance=3)
        assert game.concurrency_degree() > 0

    def test_relaxed_order_finishes_faster(self):
        strict = play(distance=1)
        relaxed = play(distance=3)
        assert relaxed.completion_time < strict.completion_time

    def test_dependency_edges_match_distance(self):
        game = play(distance=2)
        graph = game.dependency_graph()
        for turn in range(2, game.total_turns):
            label = game.turn_labels[turn]
            dependency = game.turn_labels[turn - 2]
            assert graph.ancestors_of(label) == frozenset({dependency})

    def test_cards_delivered_in_dependency_order(self):
        game = play(distance=2)
        for player in game.players.values():
            position = {turn: i for i, turn in enumerate(player.window)}
            for turn in range(2, game.total_turns):
                assert position[turn - 2] < position[turn]

    def test_deterministic_given_seed(self):
        first = play(distance=2, seed=9)
        second = play(distance=2, seed=9)
        assert first.completion_time == second.completion_time
        assert first.delivery_times == second.delivery_times


class TestConcurrencyWidth:
    def test_strict_game_has_width_one(self):
        game = play(distance=1)
        assert game.concurrency_width() == 1

    def test_width_tracks_dependency_distance(self):
        widths = [play(distance=d).concurrency_width() for d in (1, 2, 3)]
        assert widths == sorted(widths)
        assert widths[-1] > widths[0]
