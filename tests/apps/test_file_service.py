"""Tests for the distributed file service."""

from __future__ import annotations

from repro.apps.file_service import FileService, file_machine, file_spec
from repro.net.latency import UniformLatency
from repro.types import Message, MessageId


def msg(op: str, payload: dict, seqno: int = 0) -> Message:
    return Message(MessageId("t", seqno), op, payload)


class TestMachine:
    def test_write_then_append(self):
        machine = file_machine()
        state = machine.apply(
            machine.initial_state,
            msg("write", {"path": "/etc/motd", "content": "hello"}),
        )
        state = machine.apply(
            state, msg("append", {"path": "/etc/motd", "record": "r1"}, 1)
        )
        files = {p: (c, r) for p, c, r in state}
        assert files["/etc/motd"] == ("hello", frozenset({"r1"}))

    def test_appends_commute_as_sets(self):
        machine = file_machine()
        a = msg("append", {"path": "/log", "record": "x"}, 0)
        b = msg("append", {"path": "/log", "record": "y"}, 1)
        forward = machine.run([a, b])
        backward = machine.run([b, a])
        assert forward == backward

    def test_remove(self):
        machine = file_machine()
        state = machine.apply(
            machine.initial_state, msg("write", {"path": "/f", "content": "x"})
        )
        state = machine.apply(state, msg("remove", {"path": "/f"}, 1))
        assert state == machine.initial_state

    def test_spec_rules(self):
        spec = file_spec()
        a1 = msg("append", {"path": "/log", "record": "x"}, 0)
        a2 = msg("append", {"path": "/log", "record": "y"}, 1)
        w = msg("write", {"path": "/log", "content": "z"}, 2)
        w_other = msg("write", {"path": "/other", "content": "z"}, 3)
        assert spec.commute(a1, a2)
        assert not spec.commute(a1, w)
        assert spec.commute(w, w_other)  # different paths


class TestService:
    def test_servers_converge(self):
        service = FileService(
            ["s1", "s2", "s3"], latency=UniformLatency(0.2, 2.0), seed=1
        )
        scheduler = service.system.scheduler
        scheduler.call_at(0.0, service.write, "s1", "/readme", "v1")
        scheduler.call_at(1.5, service.append, "s2", "/readme", "note-a")
        scheduler.call_at(1.6, service.append, "s3", "/readme", "note-b")
        scheduler.call_at(4.0, service.write, "s1", "/readme", "v2")
        service.run()
        assert service.converged()
        content, records = service.file_at("s2", "/readme")
        assert content == "v2"
        assert records == frozenset({"note-a", "note-b"})

    def test_deferred_read_agrees_across_servers(self):
        service = FileService(
            ["s1", "s2", "s3"], latency=UniformLatency(0.2, 2.0), seed=2
        )
        scheduler = service.system.scheduler
        scheduler.call_at(0.0, service.write, "s1", "/data", "payload")
        scheduler.call_at(2.0, service.read, "s2", "/data")
        service.run()
        results = service.read_results()
        assert len(results) == 3
        assert {r.content for r in results} == {"payload"}
        assert {r.stable_index for r in results} == {1}

    def test_writes_to_distinct_files_stay_concurrent(self):
        service = FileService(["s1", "s2"], seed=3)
        l1 = service.write("s1", "/a", "1")
        l2 = service.write("s1", "/b", "2")
        service.run()
        graph = service.system.protocols["s2"].graph
        # The generic front-end chains non-commutative requests, but the
        # spec says different paths commute -- verify via the spec, and
        # that both files exist everywhere.
        assert service.file_at("s2", "/a") == ("1", frozenset())
        assert service.file_at("s2", "/b") == ("2", frozenset())
        assert l1 in graph and l2 in graph

    def test_remove_respects_order(self):
        service = FileService(["s1", "s2"], seed=4)
        scheduler = service.system.scheduler
        scheduler.call_at(0.0, service.write, "s1", "/tmp", "x")
        scheduler.call_at(2.0, service.remove, "s2", "/tmp")
        service.run()
        assert service.converged()
        assert service.file_at("s1", "/tmp") is None

    def test_listing(self):
        service = FileService(["s1", "s2"], seed=5)
        service.write("s1", "/one", "1")
        service.run()
        assert set(service.listing("s2")) == {"/one"}
