"""Tests for the name service and its app-level inconsistency detection."""

from __future__ import annotations

import pytest

from repro.apps.name_service import NameServiceSystem
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, PerPairLatency, UniformLatency


class TestBasicOperation:
    def test_update_visible_everywhere(self):
        system = NameServiceSystem(["n1", "n2", "n3"], seed=1)
        system.members["n1"].update("www", "1.1.1.1")
        system.run()
        for member in system.members.values():
            assert member.registry["www"] == "1.1.1.1"

    def test_causally_ordered_query_is_fresh(self):
        system = NameServiceSystem(
            ["n1", "n2"], latency=ConstantLatency(1.0), seed=2
        )
        system.members["n1"].update("www", "1.1.1.1")
        system.run()
        # Query issued after the issuer saw the update: carries it in
        # context, so no member flags it.
        system.members["n2"].query("www")
        system.run()
        answers = list(system.answers_by_query().values())[0]
        assert all(not a.stale for a in answers)
        assert {a.value for a in answers} == {"1.1.1.1"}

    def test_unknown_name_resolves_to_none(self):
        system = NameServiceSystem(["n1", "n2"], seed=3)
        system.members["n1"].query("missing")
        system.run()
        answers = list(system.answers_by_query().values())[0]
        assert {a.value for a in answers} == {None}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            NameServiceSystem(["n1"], engine="quantum")


class TestInconsistencyDetection:
    def _racy_system(self) -> NameServiceSystem:
        """Query racing a concurrent update: members may answer differently."""
        latency = PerPairLatency(
            # n3 receives the second update before the query; n2 after.
            {
                ("n1", "n2"): ConstantLatency(1.0),
                ("n3", "n2"): ConstantLatency(8.0),
                ("n3", "n3"): ConstantLatency(0.5),
            },
            default=ConstantLatency(1.0),
        )
        system = NameServiceSystem(
            ["n1", "n2", "n3"], engine="causal", latency=latency, seed=4
        )
        system.members["n1"].query("www")  # concurrent with the update
        system.members["n3"].update("www", "9.9.9.9")
        system.run()
        return system

    def test_divergent_answers_detected(self):
        system = self._racy_system()
        # The query answered differently across members...
        assert len(system.inconsistent_queries()) == 1
        # ...and the staleness flag caught it.
        assert system.flagged_queries() == system.inconsistent_queries()
        assert system.total_stale_answers() >= 1

    def test_stale_answer_names_extra_updates(self):
        system = self._racy_system()
        stale = [
            a
            for m in system.members.values()
            for a in m.answers
            if a.stale
        ]
        assert all(a.extra_updates for a in stale)

    def test_total_order_engine_prevents_divergence(self):
        system = NameServiceSystem(
            ["n1", "n2", "n3"],
            engine="total",
            latency=UniformLatency(0.2, 4.0),
            seed=5,
        )
        system.members["n1"].query("www")
        system.members["n3"].update("www", "9.9.9.9")
        system.members["n2"].query("www")
        system.run()
        assert system.inconsistent_queries() == []
