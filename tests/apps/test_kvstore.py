"""Tests for the replicated key-value store with item-scoped ordering."""

from __future__ import annotations

from repro.apps.kvstore import KVStoreSystem, kv_machine, kv_spec
from repro.net.latency import ConstantLatency, PerPairLatency, UniformLatency
from repro.types import Message, MessageId


class TestSpec:
    def test_different_keys_commute(self):
        spec = kv_spec()
        a = Message(MessageId("t", 0), "put", {"key": "x", "value": 1})
        b = Message(MessageId("t", 1), "put", {"key": "y", "value": 2})
        assert spec.commute(a, b)

    def test_same_key_puts_conflict(self):
        spec = kv_spec()
        a = Message(MessageId("t", 0), "put", {"key": "x", "value": 1})
        b = Message(MessageId("t", 1), "put", {"key": "x", "value": 2})
        assert not spec.commute(a, b)

    def test_get_conflicts_on_same_key(self):
        spec = kv_spec()
        a = Message(MessageId("t", 0), "get", {"key": "x"})
        b = Message(MessageId("t", 1), "put", {"key": "x", "value": 2})
        assert not spec.commute(a, b)


class TestMachine:
    def test_put_get_delete(self):
        machine = kv_machine()
        state = machine.apply(
            machine.initial_state,
            Message(MessageId("t", 0), "put", {"key": "x", "value": 7}),
        )
        assert dict(state)["x"] == 7
        state = machine.apply(
            state, Message(MessageId("t", 1), "del", {"key": "x"})
        )
        assert "x" not in dict(state)

    def test_delete_missing_key_is_noop(self):
        machine = kv_machine()
        state = machine.apply(
            machine.initial_state,
            Message(MessageId("t", 0), "del", {"key": "ghost"}),
        )
        assert state == machine.initial_state


class TestSystem:
    def test_same_key_writes_apply_in_issue_order(self):
        # Even with adversarial reordering, the per-key chain holds.
        latency = PerPairLatency(
            {("a", "c"): ConstantLatency(8.0)}, default=ConstantLatency(1.0)
        )
        system = KVStoreSystem(["a", "b", "c"], latency=latency)
        system.put("a", "x", "first")
        system.put("a", "x", "second")
        system.run()
        assert system.converged()
        assert system.value_at("c", "x") == "second"

    def test_different_keys_stay_concurrent(self):
        system = KVStoreSystem(["a", "b"], seed=2)
        l1 = system.put("a", "x", 1)
        l2 = system.put("a", "y", 2)
        system.run()
        graph = system.protocols["b"].graph
        assert graph.concurrent(l1, l2)

    def test_cross_frontend_chaining_after_delivery(self):
        system = KVStoreSystem(
            ["a", "b"], latency=ConstantLatency(0.5), seed=3
        )
        l1 = system.put("a", "x", 1)
        system.run()
        l2 = system.put("b", "x", 2)  # b has seen l1: must chain
        system.run()
        graph = system.protocols["a"].graph
        assert graph.ancestors_of(l2) == frozenset({l1})
        assert system.value_at("a", "x") == 2

    def test_get_depends_on_known_writes(self):
        system = KVStoreSystem(["a", "b"], seed=4)
        l1 = system.put("a", "x", 1)
        g = system.get("a", "x")
        system.run()
        graph = system.protocols["b"].graph
        assert l1 in graph.ancestors_of(g)

    def test_multi_member_convergence(self):
        system = KVStoreSystem(
            ["a", "b", "c"], latency=UniformLatency(0.2, 2.0), seed=5
        )
        system.put("a", "x", 1)
        system.put("b", "y", 2)
        system.put("c", "z", 3)
        system.run()
        system.delete("a", "y")  # a has seen b's put: delete chains after it
        system.run()
        assert system.converged()
        assert system.value_at("b", "y") is None

    def test_truly_concurrent_same_key_writes_may_diverge(self):
        """The documented limit: spontaneous same-key conflicts need total
        order (paper Section 5.2) — declared causality cannot help when
        neither writer knew of the other."""
        latency = PerPairLatency(
            {
                ("a", "a"): ConstantLatency(0.1),
                ("b", "a"): ConstantLatency(5.0),
                ("b", "b"): ConstantLatency(0.1),
                ("a", "b"): ConstantLatency(5.0),
            },
            default=ConstantLatency(1.0),
        )
        system = KVStoreSystem(["a", "b"], latency=latency)
        system.put("a", "x", "from-a")
        system.put("b", "x", "from-b")
        system.run()
        # Each member applied its own write last: divergence.
        assert system.value_at("a", "x") == "from-b"
        assert system.value_at("b", "x") == "from-a"
        assert not system.converged()
