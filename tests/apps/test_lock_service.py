"""Tests for the LOCK/TFR arbitration protocol (Section 6.2, Figure 5)."""

from __future__ import annotations

import pytest

from repro.apps.lock_service import LockService
from repro.errors import ConfigurationError
from repro.net.latency import UniformLatency


def run_service(members=("A", "B", "C"), cycles=2, seed=7) -> LockService:
    service = LockService(
        list(members),
        cycles=cycles,
        access_time=0.5,
        latency=UniformLatency(0.2, 1.5),
        seed=seed,
    )
    service.run()
    return service


class TestArbitration:
    def test_consensus_without_agreement_messages(self):
        service = run_service()
        assert service.consensus_reached()

    def test_every_member_acquires_once_per_cycle(self):
        service = run_service(cycles=3)
        assert service.total_acquisitions() == service.expected_total_acquisitions()
        for member in service.members.values():
            assert member.acquisitions == 3

    def test_holder_sequence_follows_rotation(self):
        service = run_service(cycles=2)
        log = service.members["A"].holder_log
        assert log[:3] == service.arbitration_sequence(0)
        assert log[3:6] == service.arbitration_sequence(1)

    def test_rotation_is_fair(self):
        service = LockService(["A", "B", "C"], cycles=3)
        first_holders = [
            service.arbitration_sequence(cycle)[0] for cycle in range(3)
        ]
        assert sorted(first_holders) == ["A", "B", "C"]

    def test_acquisition_times_are_ordered(self):
        service = run_service(cycles=2)
        times = [t for _, __, t in service.acquisition_times]
        assert times == sorted(times)
        assert len(times) == 6

    def test_message_cost_is_two_per_member_per_cycle(self):
        service = run_service(cycles=2, members=("A", "B", "C"))
        sends = service.network.trace.of_kind("send")
        # 3 LOCKs + 3 TFRs per cycle, 2 cycles.
        assert len(sends) == 12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LockService(["A"], cycles=1)
        with pytest.raises(ConfigurationError):
            LockService(["A", "B"], cycles=0)


class TestSharedPage:
    def test_page_copies_identical(self):
        service = run_service(cycles=2)
        assert service.pages_identical()

    def test_page_reflects_holder_order(self):
        service = run_service(cycles=2)
        page = service.members["A"].page
        expected = [
            service.page_edit(holder, cycle)
            for cycle in range(2)
            for holder in service.arbitration_sequence(cycle)
        ]
        assert page == expected

    def test_every_holder_edited_once_per_cycle(self):
        service = run_service(cycles=3, members=("A", "B", "C", "D"))
        page = service.members["B"].page
        assert len(page) == 3 * 4
        assert len(set(page)) == len(page)  # no duplicate edits


class TestScale:
    @pytest.mark.parametrize("size", [2, 4, 6])
    def test_consensus_at_various_group_sizes(self, size):
        members = [f"m{i}" for i in range(size)]
        service = run_service(members=members, cycles=2, seed=size)
        assert service.consensus_reached()
        assert service.total_acquisitions() == 2 * size

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_consensus_across_seeds(self, seed):
        service = run_service(seed=seed)
        assert service.consensus_reached()
