"""Tests for the replicated counter service."""

from __future__ import annotations

from repro.apps.counter import (
    CounterService,
    multi_counter_machine,
    multi_counter_spec,
)
from repro.net.latency import UniformLatency
from repro.types import Message, MessageId


class TestMachine:
    def test_independent_items(self):
        machine = multi_counter_machine()
        state = machine.initial_state
        state = machine.apply(
            state, Message(MessageId("t", 0), "inc", {"item": "x"})
        )
        state = machine.apply(
            state, Message(MessageId("t", 1), "dec", {"item": "y", "amount": 2})
        )
        as_dict = dict(state)
        assert as_dict["x"] == 1
        assert as_dict["y"] == -2

    def test_spec_item_scoping(self):
        spec = multi_counter_spec()
        rd_x = Message(MessageId("t", 0), "rd", {"item": "x"})
        inc_y = Message(MessageId("t", 1), "inc", {"item": "y"})
        inc_x = Message(MessageId("t", 2), "inc", {"item": "x"})
        assert spec.commute(rd_x, inc_y)
        assert not spec.commute(rd_x, inc_x)


class TestService:
    def test_convergence_after_mixed_updates(self):
        service = CounterService(
            ["a", "b", "c"], latency=UniformLatency(0.2, 2.0), seed=1
        )
        service.increment("a")
        service.increment("b")
        service.decrement("c")
        service.read("a")
        service.run()
        assert set(service.values().values()) == {1}

    def test_read_results_agree_across_members(self):
        service = CounterService(
            ["a", "b", "c"], latency=UniformLatency(0.2, 2.0), seed=2
        )
        service.increment("a", amount=3)
        service.increment("b", amount=2)
        service.run()  # both increments now delivered: the read covers them
        service.read("a")
        service.run()
        results = service.read_results()
        assert len(results) == 3  # one capture per member
        assert {value for _, __, value, ___ in results} == {5}

    def test_read_racing_an_increment_excludes_it_consistently(self):
        """VAL(m) excludes concurrent updates at *every* member alike."""
        service = CounterService(
            ["a", "b", "c"], latency=UniformLatency(0.2, 2.0), seed=2
        )
        service.increment("a", amount=3)
        service.increment("b", amount=2)  # concurrent with the read below
        service.read("a")
        service.run()
        results = service.read_results()
        # All members return the same agreed value; the racing increment
        # (not in the read's causal cut) is excluded everywhere.
        assert {value for _, __, value, ___ in results} == {3}
        # The live states still converge to 5 once everything is delivered.
        assert set(service.values().values()) == {5}

    def test_multiple_items_tracked_separately(self):
        service = CounterService(["a", "b"], seed=3)
        service.increment("a", item="apples")
        service.increment("a", item="apples")
        service.decrement("b", item="oranges")
        service.read("a", item="apples")
        service.run()
        assert service.value_at("a", "apples") == 2
        assert service.value_at("a", "oranges") == -1

    def test_values_snapshot(self):
        service = CounterService(["a", "b"], seed=4)
        service.increment("a")
        service.run()
        assert service.values() == {"a": 1, "b": 1}
