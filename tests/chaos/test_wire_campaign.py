"""Chaos-over-the-wire campaigns in tier-1, plus auditor non-vacuousness.

Two small seeded campaigns run end to end (real server, real proxy,
resilient clients, black-box audit), and the captured *real* wire
history is then corrupted with the mutation helpers — the checker must
flag every planted anomaly, proving the campaign-level "zero
violations" verdicts are earned rather than vacuous.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.wire_history import (
    check_wire_history,
    corrupt_lost_put,
    corrupt_reorder_session,
    corrupt_stale_read,
)
from repro.chaos.wire import WIRE_CAMPAIGNS, run_wire_campaign


@pytest.fixture(scope="module")
def overload_result():
    """One seeded overload campaign, shared by every test below."""
    return asyncio.run(run_wire_campaign(
        "overload", 5, clients=3, ops_per_client=14,
    ))


class TestCampaignSmoke:
    def test_overload_campaign_is_clean(self, overload_result):
        result = overload_result
        assert result.ok, result.summary()
        assert result.ops == 42  # every op resolved
        assert result.failed_ops == 0
        assert result.hangs == 0
        assert not result.violations
        assert not result.cm_violations
        assert not result.server_violations
        # The campaign actually bit: the tiny queue shed, clients backed
        # off and replayed.
        assert result.counters.get("overloads", 0) >= 1
        assert result.counters.get("backoffs", 0) >= 1
        assert len(result.history) >= result.ops

    def test_faulted_campaign_is_clean(self):
        result = asyncio.run(run_wire_campaign(
            "truncations", 9, clients=3, ops_per_client=10,
        ))
        assert result.ok, result.summary()
        assert result.hangs == 0
        assert not result.violations

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown wire campaign"):
            asyncio.run(run_wire_campaign("meteors", 1))

    def test_workers_needs_procs(self):
        with pytest.raises(ValueError, match="procs >= 2"):
            asyncio.run(run_wire_campaign("workers", 1, procs=1))

    def test_campaign_kinds_are_documented(self):
        assert set(WIRE_CAMPAIGNS) == {
            "disconnects", "stalls", "truncations", "overload", "workers",
        }


class TestAuditorIsNotVacuous:
    """Corrupt the *real* captured history; the checker must convict."""

    def test_reordered_session_is_flagged(self, overload_result):
        corrupted = corrupt_reorder_session(overload_result.history)
        violations = check_wire_history(corrupted)
        assert violations
        assert any(v.level == "CC" for v in violations)

    def test_stale_read_is_flagged(self, overload_result):
        corrupted = corrupt_stale_read(overload_result.history)
        violations = check_wire_history(corrupted)
        assert any(
            v.pattern in ("write-co-read", "cyclic-co", "cyclic-cf")
            for v in violations
        )

    def test_lost_put_is_flagged(self, overload_result):
        corrupted = corrupt_lost_put(overload_result.history)
        violations = check_wire_history(corrupted)
        assert any(
            v.pattern in ("write-co-init-read", "write-hb-init-read")
            for v in violations
        )

    def test_pristine_history_stays_clean(self, overload_result):
        assert not check_wire_history(overload_result.history)
