"""Campaign schema validation plus seeded end-to-end chaos properties.

The parametrized campaigns are the PR's headline regression: every
crash-eligible protocol survives seeded crash/partition/loss/churn
scripts with zero safety-invariant violations.  Each campaign is fully
deterministic given (protocol, seed), so a failure here reproduces
exactly under ``python -m repro chaos --protocol X --seed N --seeds 1``.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    CHAOS_PROTOCOLS,
    ChaosCampaign,
    ChaosCluster,
    ChaosEvent,
    random_campaign,
)
from repro.errors import ConfigurationError

MEMBERS = ("n0", "n1", "n2", "n3")


class TestCampaignSchema:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(1.0, "meteor", "n0")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(-1.0, "send", "n0")

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosCampaign("empty", (), duration=0.0)

    def test_random_campaign_is_deterministic(self):
        first = random_campaign(MEMBERS, seed=7)
        second = random_campaign(MEMBERS, seed=7)
        assert first == second
        assert first != random_campaign(MEMBERS, seed=8)

    def test_random_campaign_events_sorted_and_paired(self):
        campaign = random_campaign(MEMBERS, seed=3)
        times = [event.time for event in campaign.events]
        assert times == sorted(times)
        actions = [event.action for event in campaign.events]
        # Every disturbance comes with its recovery action.
        assert actions.count("crash") == actions.count("restart")
        assert actions.count("remove") == actions.count("rejoin")
        assert actions.count("partition") == actions.count("heal")
        assert actions.count("loss") % 2 == 0
        assert actions.count("dup") % 2 == 0

    def test_random_campaign_needs_two_members(self):
        with pytest.raises(ConfigurationError):
            random_campaign(("solo",), seed=1)

    def test_unknown_disturbance_rejected(self):
        with pytest.raises(ConfigurationError):
            random_campaign(MEMBERS, seed=1, disturbances=("gremlins",))


class TestClusterConstruction:
    def test_crash_ineligible_protocols_rejected(self):
        # asend: the token site is a single point of order — a documented
        # exclusion, not an oversight (docs/ROBUSTNESS.md).  The
        # sequencer used to be excluded too; epoch failover made it
        # eligible.
        with pytest.raises(ConfigurationError):
            ChaosCluster(protocol="asend", members=MEMBERS)

    def test_eligibility_derives_from_protocol_markers(self):
        # The matrix is defined at the protocol definition site, not in
        # the harness: every class advertising crash_eligible=True is
        # torturable, every opt-out is rejected with a dedicated error.
        from repro.broadcast import ASendTotalOrder, SequencerTotalOrder
        from repro.chaos.cluster import _CANDIDATE_PROTOCOLS, CHAOS_EXCLUDED

        assert ASendTotalOrder.crash_eligible is False
        assert SequencerTotalOrder.crash_eligible is True
        assert set(CHAOS_PROTOCOLS) == {
            cls.protocol_name
            for cls in _CANDIDATE_PROTOCOLS
            if cls.crash_eligible
        }
        assert set(CHAOS_EXCLUDED) == {
            cls.protocol_name
            for cls in _CANDIDATE_PROTOCOLS
            if not cls.crash_eligible
        }
        assert "sequencer" in CHAOS_PROTOCOLS
        assert "asend" in CHAOS_EXCLUDED

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosCluster(protocol="carrier-pigeon", members=MEMBERS)

    def test_cluster_needs_two_members(self):
        with pytest.raises(ConfigurationError):
            ChaosCluster(protocol="cbcast", members=("solo",))


@pytest.mark.parametrize("protocol", sorted(CHAOS_PROTOCOLS))
@pytest.mark.parametrize("seed", [1, 2])
class TestSeededCampaigns:
    def test_campaign_has_zero_violations(self, protocol, seed):
        cluster = ChaosCluster(protocol=protocol, members=MEMBERS, seed=seed)
        campaign = random_campaign(MEMBERS, seed=seed)
        result = cluster.run_campaign(campaign)
        assert result.ok, "\n".join(
            [result.summary()] + [str(v) for v in result.violations]
        )
        # The campaign exercised something: data flowed and faults fired.
        assert result.data_messages > 0
        assert result.crashes + result.restarts > 0
