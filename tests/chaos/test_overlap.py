"""Overlapping-disturbance chaos: detector-driven self-healing.

Serialised campaigns (``test_campaigns.py``) never start a disturbance
while another is in flight, so the repair machinery is only ever asked
to fix one thing at a time.  These tests drop that crutch:

* a handcrafted membership flush wedged by a participant crashing
  mid-flush — only the failure detector's automatic leave proposal can
  re-form the quorum and complete it;
* a handcrafted sequencer crash mid-stream — the successor must adopt
  the binding prefix and re-issue orders under its own epoch;
* seeded ``overlap=True`` random campaigns, where churn, crashes and
  partitions coincide.

Each scenario must end with zero safety violations and the full group
re-formed.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    ChaosCampaign,
    ChaosCluster,
    ChaosEvent,
    random_campaign,
)

MEMBERS = ("n0", "n1", "n2", "n3")


def mid_flush_crash_campaign() -> ChaosCampaign:
    """A flush participant crashes mid-flush.

    The ``remove`` of n1 at t=6 starts a flush among {n0, n2, n3}; n2
    crashes 0.6s later, before the flush can complete, and stays down
    long enough that the bounded FLUSH_OK re-sends alone cannot finish
    it.  Completion requires the detector to suspect n2 and inject a
    second leave into the running flush.
    """
    return ChaosCampaign(
        name="mid-flush-crash",
        events=(
            ChaosEvent(1.0, "send", "n0"),
            ChaosEvent(2.0, "send", "n2"),
            ChaosEvent(3.0, "send", "n3"),
            ChaosEvent(6.0, "remove", "n1"),
            ChaosEvent(6.6, "crash", "n2"),
            ChaosEvent(12.0, "send", "n0"),
            ChaosEvent(25.0, "restart", "n2"),
            ChaosEvent(30.0, "rejoin", "n1"),
            ChaosEvent(34.0, "send", "n3"),
        ),
        duration=42.0,
    )


def sequencer_crash_campaign() -> ChaosCampaign:
    """The sequencer crashes with assigned-but-undelivered orders."""
    return ChaosCampaign(
        name="sequencer-crash",
        events=(
            ChaosEvent(1.0, "send", "n0"),
            ChaosEvent(1.5, "send", "n1"),
            ChaosEvent(2.0, "send", "n2"),
            ChaosEvent(6.0, "crash", "n0"),
            ChaosEvent(8.0, "send", "n1"),
            ChaosEvent(9.0, "send", "n3"),
            ChaosEvent(24.0, "restart", "n0"),
            ChaosEvent(28.0, "send", "n2"),
        ),
        duration=36.0,
    )


class TestMidFlushCrash:
    @pytest.mark.parametrize("protocol", ["cbcast", "fifo"])
    def test_detector_completes_a_wedged_flush(self, protocol):
        cluster = ChaosCluster(
            protocol=protocol, members=MEMBERS, seed=1, overlap=True
        )
        result = cluster.run_campaign(mid_flush_crash_campaign())
        assert result.ok, "\n".join(
            [result.summary()] + [str(v) for v in result.violations]
        )
        # The flush did not stall: the full group re-formed (rejoin
        # order may differ — joins append to the view)...
        assert set(cluster.group.view.members) == set(MEMBERS)
        # ...because the detector proposed removing the mid-flush
        # casualty (at least n2; the campaign's own remove of n1 is a
        # manual proposal, not counted here).
        assert result.repair.get("removals_proposed", 0) >= 1
        assert result.repair.get("flushes", 0) >= 2
        assert any(
            suspect == "n2"
            for manager in cluster.managers.values()
            for suspect, _ in manager.suspicion_log
        )


class TestSequencerCrash:
    def test_successor_hands_off_and_order_survives(self):
        cluster = ChaosCluster(
            protocol="sequencer", members=MEMBERS, seed=1, overlap=True
        )
        result = cluster.run_campaign(sequencer_crash_campaign())
        # The monitor checks total-order and sequencer-epoch agreement;
        # zero violations means the handoff preserved both.
        assert result.ok, "\n".join(
            [result.summary()] + [str(v) for v in result.violations]
        )
        assert set(cluster.group.view.members) == set(MEMBERS)
        handoffs = [
            handoff
            for stack in cluster.stacks.values()
            for handoff in getattr(stack, "handoffs", [])
            if handoff["took_over"]
        ]
        assert handoffs, "no successor ever took over the sequencer role"


@pytest.mark.parametrize("protocol", ["cbcast", "sequencer", "lamport_total"])
@pytest.mark.parametrize("seed", [1, 2])
class TestSeededOverlapCampaigns:
    def test_campaign_has_zero_violations(self, protocol, seed):
        cluster = ChaosCluster(
            protocol=protocol, members=MEMBERS, seed=seed, overlap=True
        )
        campaign = random_campaign(MEMBERS, seed=seed, overlap=True)
        result = cluster.run_campaign(campaign)
        assert result.ok, "\n".join(
            [result.summary()] + [str(v) for v in result.violations]
        )
        assert result.data_messages > 0
        assert result.crashes + result.restarts > 0
