"""Unit tests for the invariant monitor, against hand-built fake stacks."""

from __future__ import annotations

from repro.analysis.invariants import InvariantMonitor, Violation
from repro.group.view_sync import InstallRecord, ViewChange
from repro.types import Envelope, Message, MessageId


def mid(sender: str, seqno: int) -> MessageId:
    return MessageId(sender, seqno)


def env(label: MessageId) -> Envelope:
    return Envelope(Message(label, "app", None))


class FakeView:
    def __init__(self, members, view_id: int = 0):
        self.members = tuple(members)
        self.view_id = view_id


class FakeGroup:
    def __init__(self, members):
        self.view = FakeView(members)


class FakeStack:
    """Just enough surface for the monitor's incarnation plumbing."""

    def __init__(
        self,
        delivered=(),
        skipped=(),
        archive=(),
        holdback=(),
        members=("a", "b"),
    ):
        self.incarnation_archive = [
            ([env(l) for l in labels], frozenset(skip))
            for labels, skip in archive
        ]
        self.incarnation = len(self.incarnation_archive)
        self._delivered_envelopes = [env(l) for l in delivered]
        self._skipped_stable = set(skipped)
        self.holdback_envelopes = [env(l) for l in holdback]
        self.group = FakeGroup(members)


class FakeTracker:
    def __init__(self, applied_frontier):
        self.applied_frontier = applied_frontier


class FakeViewSync:
    def __init__(self, install_history):
        self.install_history = install_history


A0, A1, B0 = mid("a", 0), mid("a", 1), mid("b", 0)
DATA = {A0, A1, B0}


class TestDuplicateDeliveries:
    def test_duplicate_within_incarnation_flagged(self):
        monitor = InvariantMonitor(
            {"a": FakeStack(delivered=[A0, A0])}, data_labels=DATA
        )
        violations = monitor.check_duplicate_deliveries()
        assert [v.invariant for v in violations] == ["duplicate-delivery"]
        assert violations[0].member == "a"

    def test_redelivery_across_incarnations_allowed(self):
        # An amnesiac rejoiner may legitimately re-deliver wiped history.
        stack = FakeStack(
            delivered=[A0], archive=[([A0], frozenset())]
        )
        monitor = InvariantMonitor({"a": stack}, data_labels=DATA)
        assert monitor.check_duplicate_deliveries() == []


class TestCausalOrder:
    def test_missing_dependency_flagged(self):
        monitor = InvariantMonitor(
            {"m": FakeStack(delivered=[A1])},
            dependencies={A1: frozenset({A0})},
        )
        violations = monitor.check_causal_order()
        assert len(violations) == 1
        assert "without its dependency" in violations[0].detail

    def test_misordered_dependency_flagged(self):
        monitor = InvariantMonitor(
            {"m": FakeStack(delivered=[A1, A0])},
            dependencies={A1: frozenset({A0})},
            data_labels=DATA,
        )
        violations = monitor.check_causal_order()
        assert len(violations) == 1
        assert "before its dependency" in violations[0].detail

    def test_ordered_dependency_passes(self):
        monitor = InvariantMonitor(
            {"m": FakeStack(delivered=[A0, A1])},
            dependencies={A1: frozenset({A0})},
            data_labels=DATA,
        )
        assert monitor.check_causal_order() == []

    def test_skipped_dependency_counts_as_settled(self):
        monitor = InvariantMonitor(
            {"m": FakeStack(delivered=[A1], skipped={A0})},
            dependencies={A1: frozenset({A0})},
        )
        assert monitor.check_causal_order() == []

    def test_audience_restricts_enforcement(self):
        # RST: a dependency broadcast while `m` was out of the view is
        # never ordered with respect to `m`, so it is not enforced there.
        stacks = {"m": FakeStack(delivered=[A1])}
        deps = {A1: frozenset({A0})}
        lenient = InvariantMonitor(
            stacks, dependencies=deps, audience={A0: frozenset({"n"})}
        )
        assert lenient.check_causal_order() == []
        strict = InvariantMonitor(
            stacks, dependencies=deps, audience={A0: frozenset({"m", "n"})}
        )
        assert len(strict.check_causal_order()) == 1


class TestViewSynchrony:
    @staticmethod
    def record(snapshot, digest_union):
        return InstallRecord(
            view_id=1,
            change=ViewChange("leave", "c", old_view_id=0),
            snapshot=frozenset(snapshot),
            digest_union=frozenset(digest_union),
            incarnation=0,
            time=1.0,
        )

    def test_unsettled_digest_label_flagged(self):
        agent = FakeViewSync([self.record(snapshot={A0}, digest_union={A0, B0})])
        monitor = InvariantMonitor(
            {"a": FakeStack()}, data_labels=DATA, view_syncs={"a": agent}
        )
        violations = monitor.check_view_synchrony()
        assert [v.invariant for v in violations] == ["view-synchrony"]

    def test_covered_digest_passes(self):
        agent = FakeViewSync([self.record(snapshot={A0, B0}, digest_union={A0})])
        monitor = InvariantMonitor(
            {"a": FakeStack()}, data_labels=DATA, view_syncs={"a": agent}
        )
        assert monitor.check_view_synchrony() == []


class TestGcSafety:
    def test_compaction_beyond_a_members_settled_set_flagged(self):
        stacks = {
            "a": FakeStack(delivered=[A0, A1]),
            "b": FakeStack(delivered=[A0]),  # never settled a:1
        }
        monitor = InvariantMonitor(
            stacks,
            data_labels=DATA,
            trackers={"a": FakeTracker({"a": 2})},
        )
        violations = monitor.check_gc_safety()
        assert [v.invariant for v in violations] == ["gc-safety"]
        assert "never settled" in violations[0].detail

    def test_skip_counts_toward_gc_safety(self):
        stacks = {
            "a": FakeStack(delivered=[A0, A1]),
            "b": FakeStack(delivered=[A0], skipped={A1}),
        }
        monitor = InvariantMonitor(
            stacks,
            data_labels=DATA,
            trackers={"a": FakeTracker({"a": 2})},
        )
        assert monitor.check_gc_safety() == []


class TestConvergenceAndDrain:
    def test_member_missing_settled_labels_flagged(self):
        stacks = {
            "a": FakeStack(delivered=[A0, B0]),
            "b": FakeStack(delivered=[A0]),
        }
        monitor = InvariantMonitor(stacks, data_labels=DATA)
        violations = monitor.check_convergence()
        assert [(v.invariant, v.member) for v in violations] == [
            ("convergence", "b")
        ]

    def test_held_data_envelope_flagged(self):
        monitor = InvariantMonitor(
            {"a": FakeStack(holdback=[A0])}, data_labels=DATA
        )
        violations = monitor.check_holdback_drained()
        assert [v.invariant for v in violations] == ["holdback-drained"]

    def test_final_view_mismatch_flagged(self):
        monitor = InvariantMonitor(
            {"a": FakeStack(members=("a",))},
            data_labels=DATA,
            expected_members=("a", "b"),
        )
        violations = monitor.check_final_view()
        assert [v.invariant for v in violations] == ["final-view"]


class TestBattery:
    def test_check_all_clean_on_consistent_group(self):
        stacks = {
            "a": FakeStack(delivered=[A0, A1, B0], members=("a", "b")),
            "b": FakeStack(delivered=[A0, A1, B0], members=("a", "b")),
        }
        monitor = InvariantMonitor(
            stacks,
            dependencies={A1: frozenset({A0})},
            data_labels=DATA,
            expected_members=("a", "b"),
        )
        assert monitor.check_all() == []

    def test_violation_formats_with_member(self):
        text = str(Violation("causal-order", "m", "details"))
        assert "causal-order" in text and "'m'" in text
