"""Tests for fault injection plans."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import RELIABLE, FaultPlan


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0)


class TestValidation:
    def test_rejects_probability_above_one(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_probability=1.5)

    def test_rejects_negative_probability(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(duplicate_probability=-0.1)

    def test_reliable_plan_never_drops(self, rng):
        for _ in range(100):
            copies, blocked = RELIABLE.decide("a", "b", rng)
            assert copies == 1 and not blocked


class TestDrops:
    def test_always_drop(self, rng):
        plan = FaultPlan(drop_probability=1.0)
        copies, blocked = plan.decide("a", "b", rng)
        assert copies == 0 and not blocked

    def test_drop_rate_is_roughly_respected(self, rng):
        plan = FaultPlan(drop_probability=0.3)
        dropped = sum(
            1 for _ in range(3000) if plan.decide("a", "b", rng)[0] == 0
        )
        assert 700 < dropped < 1100

    def test_duplication_yields_two_copies(self, rng):
        plan = FaultPlan(duplicate_probability=1.0)
        copies, _ = plan.decide("a", "b", rng)
        assert copies == 2


class TestPartitions:
    def test_blocks_cross_partition_hops(self, rng):
        plan = FaultPlan()
        plan.partition({"a", "b"}, {"c"})
        copies, blocked = plan.decide("a", "c", rng)
        assert copies == 0 and blocked

    def test_allows_intra_partition_hops(self, rng):
        plan = FaultPlan()
        plan.partition({"a", "b"}, {"c"})
        copies, blocked = plan.decide("a", "b", rng)
        assert copies == 1 and not blocked

    def test_unlisted_entities_are_unconstrained(self, rng):
        plan = FaultPlan()
        plan.partition({"a"}, {"b"})
        copies, blocked = plan.decide("x", "y", rng)
        assert copies == 1 and not blocked

    def test_unlisted_to_listed_is_blocked(self, rng):
        plan = FaultPlan()
        plan.partition({"a"}, {"b"})
        copies, blocked = plan.decide("x", "a", rng)
        assert copies == 0 and blocked

    def test_heal_removes_partitions(self, rng):
        plan = FaultPlan()
        plan.partition({"a"}, {"b"})
        plan.heal()
        copies, blocked = plan.decide("a", "b", rng)
        assert copies == 1 and not blocked

    def test_rejects_overlapping_groups(self):
        plan = FaultPlan()
        with pytest.raises(ConfigurationError):
            plan.partition({"a", "b"}, {"b", "c"})

    def test_partitioned_flag(self):
        plan = FaultPlan()
        assert not plan.partitioned
        plan.partition({"a"}, {"b"})
        assert plan.partitioned

    def test_blocked_helper(self):
        plan = FaultPlan()
        plan.partition({"a"}, {"b"})
        assert plan.blocked("a", "b")
        assert not plan.blocked("a", "a")
