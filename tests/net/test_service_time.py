"""Tests for per-node processing (service) time."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from tests.net.test_network import RecordingNode, envelope


def make_net(service_time: float) -> Network:
    return Network(
        Scheduler(),
        latency=ConstantLatency(1.0),
        rng=RngRegistry(0),
        service_time=service_time,
    )


class TestServiceTime:
    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            make_net(-0.1)

    def test_zero_service_preserves_arrival_times(self):
        net = make_net(0.0)
        node = RecordingNode("b")
        net.register(RecordingNode("a"))
        net.register(node)
        net.unicast("a", "b", envelope())
        net.scheduler.run()
        assert node.received[0][0] == 1.0

    def test_single_arrival_costs_one_service(self):
        net = make_net(0.5)
        node = RecordingNode("b")
        net.register(RecordingNode("a"))
        net.register(node)
        net.unicast("a", "b", envelope())
        net.scheduler.run()
        assert node.received[0][0] == pytest.approx(1.5)

    def test_simultaneous_arrivals_queue_fifo(self):
        net = make_net(0.5)
        node = RecordingNode("b")
        net.register(RecordingNode("a"))
        net.register(node)
        for seqno in range(3):
            net.unicast("a", "b", envelope("a", seqno))
        net.scheduler.run()
        times = [t for t, _, __ in node.received]
        assert times == pytest.approx([1.5, 2.0, 2.5])

    def test_queues_are_per_node(self):
        net = make_net(0.5)
        b, c = RecordingNode("b"), RecordingNode("c")
        net.register(RecordingNode("a"))
        net.register(b)
        net.register(c)
        net.unicast("a", "b", envelope("a", 0))
        net.unicast("a", "c", envelope("a", 1))
        net.scheduler.run()
        # Each node serves its own arrival without waiting for the other.
        assert b.received[0][0] == pytest.approx(1.5)
        assert c.received[0][0] == pytest.approx(1.5)

    def test_idle_node_does_not_accumulate_backlog(self):
        net = make_net(0.5)
        node = RecordingNode("b")
        net.register(RecordingNode("a"))
        net.register(node)
        net.unicast("a", "b", envelope("a", 0))
        net.scheduler.run()
        # A much later arrival starts fresh.
        net.scheduler.call_at(10.0, net.unicast, "a", "b", envelope("a", 1))
        net.scheduler.run()
        assert node.received[1][0] == pytest.approx(11.5)

    def test_load_visible_in_protocol_latency(self):
        """More arrivals per request => higher delivery latency."""
        from repro.experiments.claim_scale import run_protocol

        stable = run_protocol("stable-point", 12, seed=9)
        lamport = run_protocol("lamport", 12, seed=9)
        assert lamport["latency"] > stable["latency"]
        assert lamport["hops"] > stable["hops"] * 5
