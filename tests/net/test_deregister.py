"""Tests for node deregistration (crash simulation)."""

from __future__ import annotations

import pytest

from repro.errors import MembershipError
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from tests.net.test_network import RecordingNode, envelope


@pytest.fixture
def net() -> Network:
    return Network(Scheduler(), latency=ConstantLatency(1.0), rng=RngRegistry(0))


class TestDeregister:
    def test_removed_node_receives_nothing(self, net):
        a, b = RecordingNode("a"), RecordingNode("b")
        net.register(a)
        net.register(b)
        net.deregister("b")
        net.broadcast("a", envelope())
        net.scheduler.run()
        assert b.received == []
        assert len(a.received) == 1

    def test_in_flight_hop_to_removed_node_dropped(self, net):
        a, b = RecordingNode("a"), RecordingNode("b")
        net.register(a)
        net.register(b)
        net.broadcast("a", envelope())
        net.deregister("b")  # hop already queued
        net.scheduler.run()
        assert b.received == []
        assert net.hops_dropped == 1

    def test_unknown_entity_rejected(self, net):
        with pytest.raises(MembershipError):
            net.deregister("ghost")

    def test_reregistration_allowed_after_removal(self, net):
        net.register(RecordingNode("a"))
        net.deregister("a")
        fresh = RecordingNode("a")
        net.register(fresh)
        assert net.node("a") is fresh

    def test_crash_scenario_with_protocols(self):
        from repro.broadcast.osend import OSendBroadcast
        from repro.group.membership import GroupMembership

        scheduler = Scheduler()
        net = Network(
            scheduler, latency=ConstantLatency(0.5), rng=RngRegistry(0)
        )
        membership = GroupMembership(["a", "b", "c"])
        stacks = {
            m: net.register(OSendBroadcast(m, membership))
            for m in ("a", "b", "c")
        }
        stacks["a"].osend("before")
        scheduler.run()
        net.deregister("c")
        label = stacks["a"].osend("after")
        scheduler.run()
        assert label in stacks["b"].delivered
        assert label not in stacks["c"].delivered
