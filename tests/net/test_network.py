"""Tests for the simulated network transport."""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.errors import ConfigurationError, MembershipError
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency, PerPairLatency
from repro.net.network import Network
from repro.sim.node import SimNode
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.types import Envelope, Message, MessageId


class RecordingNode(SimNode):
    """Collects (time, sender, msg_id) for every arrival."""

    def __init__(self, entity_id: str) -> None:
        super().__init__(entity_id)
        self.received: List[Tuple[float, str, MessageId]] = []

    def on_receive(self, sender, envelope):
        self.received.append((self.now, sender, envelope.msg_id))


def envelope(sender: str = "a", seqno: int = 0) -> Envelope:
    return Envelope(Message(MessageId(sender, seqno), "op"))


@pytest.fixture
def net() -> Network:
    return Network(Scheduler(), latency=ConstantLatency(1.0), rng=RngRegistry(0))


class TestRegistration:
    def test_register_and_lookup(self, net):
        node = RecordingNode("a")
        assert net.register(node) is node
        assert net.node("a") is node

    def test_duplicate_id_rejected(self, net):
        net.register(RecordingNode("a"))
        with pytest.raises(ConfigurationError):
            net.register(RecordingNode("a"))

    def test_unknown_node_lookup(self, net):
        with pytest.raises(MembershipError):
            net.node("ghost")

    def test_entity_ids_in_registration_order(self, net):
        for name in ("c", "a", "b"):
            net.register(RecordingNode(name))
        assert net.entity_ids == ["c", "a", "b"]
        assert len(net) == 3


class TestUnicast:
    def test_delivers_after_latency(self, net):
        a, b = RecordingNode("a"), RecordingNode("b")
        net.register(a)
        net.register(b)
        net.unicast("a", "b", envelope())
        net.scheduler.run()
        assert len(b.received) == 1
        time, sender, _ = b.received[0]
        assert time == 1.0 and sender == "a"

    def test_unknown_destination_rejected(self, net):
        net.register(RecordingNode("a"))
        with pytest.raises(MembershipError):
            net.unicast("a", "ghost", envelope())


class TestBroadcast:
    def test_reaches_everyone_including_sender(self, net):
        nodes = [RecordingNode(n) for n in ("a", "b", "c")]
        for node in nodes:
            net.register(node)
        net.broadcast("a", envelope())
        net.scheduler.run()
        assert all(len(node.received) == 1 for node in nodes)

    def test_hop_counters(self, net):
        for name in ("a", "b", "c"):
            net.register(RecordingNode(name))
        net.broadcast("a", envelope())
        net.scheduler.run()
        assert net.hops_sent == 3
        assert net.hops_delivered == 3
        assert net.hops_dropped == 0

    def test_send_and_receive_traced(self, net):
        for name in ("a", "b"):
            net.register(RecordingNode(name))
        net.broadcast("a", envelope())
        net.scheduler.run()
        assert len(net.trace.of_kind("send")) == 1
        assert len(net.trace.of_kind("receive")) == 2

    def test_per_pair_latency_reorders_arrivals(self):
        sched = Scheduler()
        latency = PerPairLatency(
            {("a", "b"): ConstantLatency(5.0)}, default=ConstantLatency(1.0)
        )
        net = Network(sched, latency=latency, rng=RngRegistry(0))
        nodes = {n: RecordingNode(n) for n in ("a", "b", "c")}
        for node in nodes.values():
            net.register(node)
        net.broadcast("a", envelope("a", 0))
        net.broadcast("c", envelope("c", 0))
        sched.run()
        # b got a's copy late (t=5), c's copy early (t=1).
        order_at_b = [msg.sender for _, __, msg in nodes["b"].received]
        assert order_at_b == ["c", "a"]


class TestFaults:
    def test_drops_count_and_trace(self):
        sched = Scheduler()
        net = Network(
            sched,
            latency=ConstantLatency(1.0),
            faults=FaultPlan(drop_probability=1.0),
            rng=RngRegistry(0),
        )
        receiver = RecordingNode("b")
        net.register(RecordingNode("a"))
        net.register(receiver)
        net.broadcast("a", envelope())
        sched.run()
        assert receiver.received == []
        assert net.hops_dropped == 2
        assert len(net.trace.of_kind("drop")) == 2

    def test_duplication_delivers_twice(self):
        sched = Scheduler()
        net = Network(
            sched,
            latency=ConstantLatency(1.0),
            faults=FaultPlan(duplicate_probability=1.0),
            rng=RngRegistry(0),
        )
        receiver = RecordingNode("b")
        net.register(receiver)
        net.unicast("b", "b", envelope())
        sched.run()
        assert len(receiver.received) == 2

    def test_partition_blocks_until_healed(self):
        sched = Scheduler()
        faults = FaultPlan()
        net = Network(
            sched,
            latency=ConstantLatency(1.0),
            faults=faults,
            rng=RngRegistry(0),
        )
        a, b = RecordingNode("a"), RecordingNode("b")
        net.register(a)
        net.register(b)
        faults.partition({"a"}, {"b"})
        net.unicast("a", "b", envelope("a", 0))
        sched.run()
        assert b.received == []
        faults.heal()
        net.unicast("a", "b", envelope("a", 1))
        sched.run()
        assert len(b.received) == 1
