"""Tests for latency models."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.latency import (
    ConstantLatency,
    LognormalLatency,
    PerPairLatency,
    UniformLatency,
)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0)


class TestConstant:
    def test_returns_fixed_delay(self, rng):
        model = ConstantLatency(2.5)
        assert model.sample("a", "b", rng) == 2.5
        assert model.sample("x", "y", rng) == 2.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)

    def test_zero_is_allowed(self, rng):
        assert ConstantLatency(0.0).sample("a", "b", rng) == 0.0


class TestUniform:
    def test_samples_within_bounds(self, rng):
        model = UniformLatency(0.5, 1.5)
        for _ in range(200):
            assert 0.5 <= model.sample("a", "b", rng) <= 1.5

    def test_samples_vary(self, rng):
        model = UniformLatency(0.0, 1.0)
        draws = {model.sample("a", "b", rng) for _ in range(20)}
        assert len(draws) > 1

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(2.0, 1.0)

    def test_rejects_negative_low(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(-0.5, 1.0)


class TestLognormal:
    def test_samples_positive(self, rng):
        model = LognormalLatency(median=1.0, sigma=0.8)
        for _ in range(200):
            assert model.sample("a", "b", rng) > 0

    def test_median_roughly_respected(self, rng):
        model = LognormalLatency(median=2.0, sigma=0.3)
        draws = sorted(model.sample("a", "b", rng) for _ in range(2000))
        observed_median = draws[len(draws) // 2]
        assert 1.6 < observed_median < 2.4

    def test_rejects_nonpositive_median(self):
        with pytest.raises(ConfigurationError):
            LognormalLatency(median=0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            LognormalLatency(median=1.0, sigma=-0.1)


class TestPerPair:
    def test_uses_pair_specific_model(self, rng):
        model = PerPairLatency(
            {("a", "b"): ConstantLatency(5.0)}, default=ConstantLatency(1.0)
        )
        assert model.sample("a", "b", rng) == 5.0
        assert model.sample("b", "a", rng) == 1.0

    def test_is_directional(self, rng):
        model = PerPairLatency(
            {("a", "b"): ConstantLatency(5.0)}, default=ConstantLatency(1.0)
        )
        assert model.sample("b", "a", rng) != model.sample("a", "b", rng)

    def test_default_default_is_unit_constant(self, rng):
        model = PerPairLatency({})
        assert model.sample("a", "b", rng) == 1.0
