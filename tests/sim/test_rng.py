"""Tests for named random streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("link")
        b = RngRegistry(42).stream("link")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("link")
        b = RngRegistry(2).stream("link")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        registry = RngRegistry(7)
        a = registry.stream("alpha")
        b = registry.stream("beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_creation_order_is_irrelevant(self):
        forward = RngRegistry(9)
        x1 = forward.stream("x").random()
        y1 = forward.stream("y").random()
        backward = RngRegistry(9)
        y2 = backward.stream("y").random()
        x2 = backward.stream("x").random()
        assert (x1, y1) == (x2, y2)

    def test_repeated_access_returns_same_object(self):
        registry = RngRegistry(3)
        assert registry.stream("s") is registry.stream("s")


class TestFork:
    def test_fork_is_deterministic(self):
        a = RngRegistry(5).fork("child").stream("s")
        b = RngRegistry(5).fork("child").stream("s")
        assert a.random() == b.random()

    def test_fork_is_independent_of_parent(self):
        parent = RngRegistry(5)
        child = parent.fork("child")
        parent_draw = parent.stream("s").random()
        child_draw = child.stream("s").random()
        assert parent_draw != child_draw

    def test_master_seed_exposed(self):
        assert RngRegistry(11).master_seed == 11
