"""Crash-stop fault model: crash/restart transitions, guards, amnesia."""

from __future__ import annotations

import pytest

from repro.broadcast.fifo import FifoBroadcast
from repro.broadcast.unordered import UnorderedBroadcast
from repro.errors import SimulationError
from tests.conftest import build_group


class TestTransitions:
    def test_crash_marks_node_down(self):
        _, _, stacks = build_group(UnorderedBroadcast)
        stacks["a"].crash()
        assert stacks["a"].crashed
        assert not stacks["b"].crashed

    def test_double_crash_raises(self):
        _, _, stacks = build_group(UnorderedBroadcast)
        stacks["a"].crash()
        with pytest.raises(SimulationError):
            stacks["a"].crash()

    def test_restart_of_up_node_raises(self):
        _, _, stacks = build_group(UnorderedBroadcast)
        with pytest.raises(SimulationError):
            stacks["a"].restart()

    def test_restart_increments_incarnation(self):
        _, _, stacks = build_group(UnorderedBroadcast)
        assert stacks["a"].incarnation == 0
        stacks["a"].crash()
        stacks["a"].restart()
        assert stacks["a"].incarnation == 1
        assert not stacks["a"].crashed


class TestCrashedIsolation:
    def test_crashed_node_cannot_send(self):
        _, _, stacks = build_group(UnorderedBroadcast)
        stacks["a"].crash()
        with pytest.raises(SimulationError):
            stacks["a"].bcast("app")

    def test_network_drops_hops_to_crashed_destination(self):
        scheduler, net, stacks = build_group(UnorderedBroadcast)
        stacks["c"].crash()
        stacks["a"].bcast("app")
        scheduler.run()
        assert len(stacks["b"].delivered) == 1
        assert len(stacks["c"].delivered) == 0
        assert net.hops_dropped >= 1

    def test_in_flight_copies_to_crashing_node_are_lost(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast)
        stacks["a"].bcast("app")
        # Crash before any latency elapses: the copy is in flight.
        stacks["c"].crash()
        scheduler.run()
        assert len(stacks["c"].delivered) == 0


class TestGuardedTimers:
    def test_timer_suppressed_while_crashed(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast)
        fired = []
        stacks["a"].call_in(1.0, fired.append, 1)
        stacks["a"].crash()
        scheduler.run()
        assert fired == []

    def test_timer_from_previous_incarnation_suppressed(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast)
        fired = []
        stacks["a"].call_in(1.0, fired.append, 1)
        stacks["a"].crash()
        stacks["a"].restart()  # incarnation changed before the timer fires
        scheduler.run()
        assert fired == []

    def test_timer_fires_when_node_stays_up(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast)
        fired = []
        stacks["a"].call_in(1.0, fired.append, 1)
        scheduler.run()
        assert fired == [1]


class TestAmnesia:
    def test_restart_wipes_delivered_state_and_archives_it(self):
        scheduler, _, stacks = build_group(FifoBroadcast)
        labels = [stacks["a"].bcast("app") for _ in range(3)]
        scheduler.run()
        assert list(stacks["b"].delivered) == labels
        stacks["b"].crash()
        stacks["b"].restart()
        assert list(stacks["b"].delivered) == []
        assert stacks["b"].holdback_size == 0
        archived, skipped = stacks["b"].incarnation_archive[0]
        assert [e.msg_id for e in archived] == labels
        assert skipped == frozenset()

    def test_label_allocator_is_durable_across_restart(self):
        scheduler, _, stacks = build_group(FifoBroadcast)
        first = stacks["a"].bcast("app")
        scheduler.run()
        stacks["a"].crash()
        stacks["a"].restart()
        second = stacks["a"].bcast("app")
        # Labels must never be reused across incarnations.
        assert second.seqno == first.seqno + 1

    def test_rejoiner_fifo_blocks_on_lost_history(self):
        """An amnesiac FIFO member holds new traffic behind wiped history."""
        scheduler, _, stacks = build_group(FifoBroadcast)
        stacks["a"].bcast("app")
        scheduler.run()
        stacks["b"].crash()
        stacks["b"].restart()
        stacks["a"].bcast("app")  # seqno 1; b's next-expected reset to 0
        scheduler.run()
        assert stacks["b"].holdback_size == 1
