"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerStoppedError, SimulationError
from repro.sim.scheduler import Scheduler


class TestScheduling:
    def test_starts_at_zero(self):
        assert Scheduler().now == 0.0

    def test_custom_start_time(self):
        assert Scheduler(start_time=5.0).now == 5.0

    def test_call_at_fires_at_time(self):
        sched = Scheduler()
        seen = []
        sched.call_at(2.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [2.5]

    def test_call_in_is_relative(self):
        sched = Scheduler()
        seen = []
        sched.call_at(1.0, lambda: sched.call_in(0.5, lambda: seen.append(sched.now)))
        sched.run()
        assert seen == [1.5]

    def test_call_now_runs_at_current_time(self):
        sched = Scheduler()
        seen = []
        sched.call_at(3.0, lambda: sched.call_now(lambda: seen.append(sched.now)))
        sched.run()
        assert seen == [3.0]

    def test_arguments_are_passed(self):
        sched = Scheduler()
        seen = []
        sched.call_at(1.0, seen.append, "payload")
        sched.run()
        assert seen == ["payload"]

    def test_rejects_past_times(self):
        sched = Scheduler()
        sched.call_at(1.0, lambda: None)
        sched.run()
        with pytest.raises(SimulationError):
            sched.call_at(0.5, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Scheduler().call_in(-0.1, lambda: None)


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sched = Scheduler()
        order = []
        sched.call_at(3.0, order.append, "c")
        sched.call_at(1.0, order.append, "a")
        sched.call_at(2.0, order.append, "b")
        sched.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sched = Scheduler()
        order = []
        for tag in ("first", "second", "third"):
            sched.call_at(1.0, order.append, tag)
        sched.run()
        assert order == ["first", "second", "third"]

    def test_nested_same_time_events_run_after_existing(self):
        sched = Scheduler()
        order = []
        sched.call_at(1.0, lambda: (order.append("a"), sched.call_now(order.append, "c")))
        sched.call_at(1.0, order.append, "b")
        sched.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_monotonically(self):
        sched = Scheduler()
        times = []
        for t in (0.5, 2.0, 2.0, 7.25):
            sched.call_at(t, lambda: times.append(sched.now))
        sched.run()
        assert times == sorted(times)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = Scheduler()
        seen = []
        handle = sched.call_at(1.0, seen.append, "x")
        handle.cancel()
        sched.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sched = Scheduler()
        handle = sched.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_other_events_survive_cancellation(self):
        sched = Scheduler()
        seen = []
        handle = sched.call_at(1.0, seen.append, "cancelled")
        sched.call_at(1.0, seen.append, "kept")
        handle.cancel()
        sched.run()
        assert seen == ["kept"]


class TestExecution:
    def test_step_returns_false_on_empty_queue(self):
        assert Scheduler().step() is False

    def test_step_fires_one_event(self):
        sched = Scheduler()
        seen = []
        sched.call_at(1.0, seen.append, 1)
        sched.call_at(2.0, seen.append, 2)
        assert sched.step() is True
        assert seen == [1]

    def test_run_returns_event_count(self):
        sched = Scheduler()
        for t in range(5):
            sched.call_at(float(t), lambda: None)
        assert sched.run() == 5

    def test_run_counts_dynamically_scheduled_events(self):
        sched = Scheduler()

        def chain(depth: int) -> None:
            if depth:
                sched.call_in(1.0, chain, depth - 1)

        sched.call_at(0.0, chain, 3)
        assert sched.run() == 4

    def test_run_max_events_guards_livelock(self):
        sched = Scheduler()

        def forever() -> None:
            sched.call_in(1.0, forever)

        sched.call_at(0.0, forever)
        with pytest.raises(SimulationError):
            sched.run(max_events=100)

    def test_run_until_stops_at_deadline(self):
        sched = Scheduler()
        seen = []
        sched.call_at(1.0, seen.append, "early")
        sched.call_at(5.0, seen.append, "late")
        fired = sched.run_until(2.0)
        assert fired == 1
        assert seen == ["early"]
        assert sched.now == 2.0
        assert sched.pending == 1

    def test_run_until_then_run_finishes(self):
        sched = Scheduler()
        seen = []
        sched.call_at(5.0, seen.append, "late")
        sched.run_until(2.0)
        sched.run()
        assert seen == ["late"]

    def test_run_until_rejects_past_deadline(self):
        sched = Scheduler()
        sched.call_at(4.0, lambda: None)
        sched.run()
        with pytest.raises(SimulationError):
            sched.run_until(1.0)

    def test_events_processed_counter(self):
        sched = Scheduler()
        sched.call_at(1.0, lambda: None)
        sched.call_at(2.0, lambda: None)
        sched.run()
        assert sched.events_processed == 2

    def test_stop_discards_pending_and_blocks_scheduling(self):
        sched = Scheduler()
        seen = []
        sched.call_at(1.0, seen.append, "never")
        sched.stop()
        assert sched.run() == 0
        assert seen == []
        with pytest.raises(SchedulerStoppedError):
            sched.call_at(2.0, lambda: None)
