"""Tests for the SimNode base class."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.sim.node import SimNode
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


class TestAttachment:
    def test_unattached_node_has_no_network(self):
        node = SimNode("a")
        with pytest.raises(ConfigurationError):
            _ = node.network

    def test_attach_via_registration(self):
        net = Network(Scheduler(), rng=RngRegistry(0))
        node = SimNode("a")
        net.register(node)
        assert node.network is net
        assert node.scheduler is net.scheduler

    def test_now_tracks_scheduler(self):
        scheduler = Scheduler()
        net = Network(scheduler, rng=RngRegistry(0))
        node = net.register(SimNode("a"))
        scheduler.call_at(4.0, lambda: None)
        scheduler.run()
        assert node.now == 4.0

    def test_on_receive_must_be_overridden(self):
        node = SimNode("a")
        with pytest.raises(NotImplementedError):
            node.on_receive("b", None)  # type: ignore[arg-type]

    def test_repr_names_the_entity(self):
        assert "a" in repr(SimNode("a"))
