"""Tests for the trace recorder."""

from __future__ import annotations

from repro.sim.trace import TraceEvent, TraceRecorder


class TestRecording:
    def test_records_event_fields(self):
        trace = TraceRecorder()
        trace.record(1.5, "send", msg="m1", size=3)
        event = trace.events[0]
        assert event.time == 1.5
        assert event.kind == "send"
        assert event.get("msg") == "m1"
        assert event.get("size") == 3

    def test_get_default(self):
        event = TraceEvent(0.0, "x", {})
        assert event.get("missing", "fallback") == "fallback"

    def test_len_and_iter(self):
        trace = TraceRecorder()
        for i in range(4):
            trace.record(float(i), "tick")
        assert len(trace) == 4
        assert [e.time for e in trace] == [0.0, 1.0, 2.0, 3.0]

    def test_disabled_recorder_drops_events(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0.0, "send")
        assert len(trace) == 0

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(0.0, "send")
        trace.clear()
        assert len(trace) == 0

    def test_events_returns_copy(self):
        trace = TraceRecorder()
        trace.record(0.0, "send")
        trace.events.clear()
        assert len(trace) == 1


class TestQuerying:
    def _sample(self) -> TraceRecorder:
        trace = TraceRecorder()
        trace.record(0.0, "send", msg="m1")
        trace.record(1.0, "deliver", msg="m1", entity="a")
        trace.record(2.0, "deliver", msg="m1", entity="b")
        trace.record(3.0, "send", msg="m2")
        return trace

    def test_of_kind(self):
        trace = self._sample()
        assert [e.get("msg") for e in trace.of_kind("send")] == ["m1", "m2"]

    def test_where(self):
        trace = self._sample()
        found = trace.where(lambda e: e.get("entity") == "b")
        assert len(found) == 1
        assert found[0].time == 2.0

    def test_first_by_kind(self):
        trace = self._sample()
        event = trace.first("deliver")
        assert event is not None and event.get("entity") == "a"

    def test_first_with_predicate(self):
        trace = self._sample()
        event = trace.first("deliver", lambda e: e.get("entity") == "b")
        assert event is not None and event.time == 2.0

    def test_first_missing_returns_none(self):
        assert self._sample().first("stable_point") is None


class TestSubscription:
    def test_subscriber_sees_future_events(self):
        trace = TraceRecorder()
        seen = []
        trace.subscribe(seen.append)
        trace.record(0.0, "send")
        assert len(seen) == 1 and seen[0].kind == "send"

    def test_subscriber_misses_past_events(self):
        trace = TraceRecorder()
        trace.record(0.0, "send")
        seen = []
        trace.subscribe(seen.append)
        assert seen == []
