"""Regressions for crash-recovery across GC, anti-entropy and RST accounting.

Pins three bugs found by the chaos campaigns:

* anti-entropy used to advertise every *seen* label, including bodies the
  stability tracker had compacted away — an amnesiac rejoiner then NACKed
  the advertiser forever for envelopes nobody could serve;
* the recovery agent's chase state (``_nack_state`` / ``_first_missing``)
  grew without bound because nothing purged entries for labels that had
  settled;
* RST counted raw deliveries per origin, so a rejoiner's own post-restart
  traffic "paid off" pre-crash history it never actually delivered.
"""

from __future__ import annotations

from repro.broadcast.gc import track_group
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.recovery import protect_group
from repro.broadcast.rst import RstBroadcast
from repro.group.membership import GroupMembership
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.types import Envelope, Message, MessageId
from tests.conftest import build_group, mid


def guarded_group(seed: int = 0, members=("a", "b", "c")):
    """A tracked *and* recovery-protected OSend group."""
    scheduler = Scheduler()
    net = Network(
        scheduler,
        latency=UniformLatency(0.2, 1.5),
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(members)
    stacks = {
        m: net.register(OSendBroadcast(m, membership)) for m in members
    }
    trackers = track_group(stacks)
    agents = protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
    return scheduler, stacks, trackers, agents


def compact_everywhere(scheduler, stacks, trackers) -> None:
    """Two gossip exchanges: everyone learns everyone's prefix, compacts."""
    for _ in range(2):
        for tracker in trackers.values():
            tracker.gossip_round()
        scheduler.run()


class TestRejoinViaStableFrontier:
    """S2: compacted history must settle at a rejoiner, not NACK forever."""

    def test_digest_advertises_only_servable_labels(self):
        scheduler, stacks, trackers, agents = guarded_group()
        for _ in range(4):
            stacks["a"].osend("op")
        scheduler.run()
        compact_everywhere(scheduler, stacks, trackers)
        assert trackers["a"].store_size == 0
        # An amnesiac rejoiner receives the digest...
        stacks["b"].crash()
        stacks["b"].restart()
        agents["a"].anti_entropy_round()
        scheduler.run()
        # ...and settles the compacted prefix instead of chasing it.
        assert stacks["b"].skipped_stable == {mid("a", i) for i in range(4)}
        assert agents["b"].outstanding_labels == []
        assert agents["b"].nacks_sent == 0

    def test_rejoiner_unblocks_traffic_behind_compacted_deps(self):
        scheduler, stacks, trackers, agents = guarded_group()
        old = [stacks["a"].osend("op") for _ in range(3)]
        scheduler.run()
        compact_everywhere(scheduler, stacks, trackers)
        stacks["b"].crash()
        stacks["b"].restart()
        # New traffic names a compacted ancestor: b must hold it until the
        # frontier arrives, then deliver without ever seeing the ancestor.
        new = stacks["a"].osend("op", occurs_after=old[-1])
        scheduler.run()
        assert stacks["b"].holdback_size == 1
        agents["a"].anti_entropy_round()
        scheduler.run()
        assert stacks["b"].holdback_size == 0
        assert new in stacks["b"].delivered
        assert old[-1] in stacks["b"].skipped_stable

    def test_advertised_frontiers_and_volatile_reset(self):
        scheduler, stacks, trackers, _ = guarded_group()
        for _ in range(4):
            stacks["a"].osend("op")
        scheduler.run()
        compact_everywhere(scheduler, stacks, trackers)
        assert trackers["a"].advertised_frontiers().get("a", 0) == 4
        assert trackers["a"].applied_frontier.get("a", 0) == 4
        trackers["a"].reset_volatile()
        assert trackers["a"].advertised_frontiers() == {}
        assert trackers["a"].applied_frontier == {}

    def test_stable_skip_advances_trackers_own_prefix(self):
        scheduler, stacks, trackers, agents = guarded_group()
        for _ in range(4):
            stacks["a"].osend("op")
        scheduler.run()
        compact_everywhere(scheduler, stacks, trackers)
        stacks["b"].crash()
        stacks["b"].restart()
        assert trackers["b"].local_prefix("a") == 0
        agents["a"].anti_entropy_round()
        scheduler.run()
        # Skipped history counts as settled, so group-wide stability does
        # not collapse to zero whenever an amnesiac member rejoins.
        assert trackers["b"].local_prefix("a") == 4


class TestChaseStatePurge:
    """S4: chase state must shrink back to the set of labels still missing."""

    def test_arrival_purges_chase_state(self):
        from repro.net.faults import FaultPlan  # local: only this test

        # A fault plan so a dependency can be lost outright.
        scheduler = Scheduler()
        faults = FaultPlan()
        net = Network(
            scheduler,
            latency=UniformLatency(0.2, 1.5),
            faults=faults,
            rng=RngRegistry(0),
        )
        membership = GroupMembership(["a", "b", "c"])
        stacks = {
            m: net.register(OSendBroadcast(m, membership))
            for m in ("a", "b", "c")
        }
        agents = protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
        faults.drop_probability = 1.0
        m1 = stacks["a"].osend("first")
        scheduler.run()
        faults.drop_probability = 0.0
        m2 = stacks["a"].osend("second", occurs_after=m1)
        scheduler.run()
        for stack in stacks.values():
            assert stack.delivered == [m1, m2]
        assert sum(a.nacks_sent for a in agents.values()) > 0
        # Everything settled, so no agent may retain chase state.
        for agent in agents.values():
            assert agent._nack_state == {}
            assert agent._first_missing == {}

    def test_purge_settled_sweeps_stale_entries(self):
        scheduler, stacks, _, agents = guarded_group()
        label = stacks["a"].osend("op")
        scheduler.run()
        agent = agents["b"]
        # Simulate state left behind by a label that settled out of band
        # (e.g. via a stable-prefix skip, which bypasses intercept()).
        agent._nack_state[label] = (0.0, 1)
        agent._first_missing[label] = 0.0
        agent._purge_settled()
        assert agent._nack_state == {}
        assert agent._first_missing == {}

    def test_reset_volatile_clears_chase_state(self):
        scheduler, stacks, _, agents = guarded_group()
        agent = agents["b"]
        agent._nack_state[mid("a", 7)] = (0.0, 1)
        agent._first_missing[mid("a", 7)] = 0.0
        agent.reset_volatile()
        assert agent._nack_state == {}
        assert agent._first_missing == {}
        assert agent.outstanding_labels == []


class TestRstPrefixAccounting:
    """RST settled-prefix semantics: out-of-order deliveries must not
    advance the per-origin counters other members' stamps rely on."""

    def _inject(self, stack, sender: str, seqno: int) -> None:
        envelope = Envelope(
            Message(MessageId(sender, seqno), "app", None)
        ).with_metadata(sent_matrix={})
        stack.on_receive(sender, envelope)

    def test_out_of_order_delivery_buffers_instead_of_counting(self):
        _, _, stacks = build_group(RstBroadcast)
        stack = stacks["a"]
        self._inject(stack, "b", 2)  # no deps claimed: delivered immediately
        assert mid("b", 2) in stack.delivered
        # The raw count is 1, but the contiguous settled prefix is still 0.
        assert stack._delivered_from.get("b", 0) == 0
        assert stack._delivered_seqnos["b"] == {2}

    def test_prefix_advances_once_contiguous(self):
        _, _, stacks = build_group(RstBroadcast)
        stack = stacks["a"]
        for seqno in (2, 0, 1):
            self._inject(stack, "b", seqno)
        assert stack._delivered_from["b"] == 3
        assert stack._delivered_seqnos["b"] == set()

    def test_restart_resets_prefix_accounting(self):
        scheduler, _, stacks = build_group(RstBroadcast)
        stacks["b"].bcast("op")
        scheduler.run()
        assert stacks["a"]._delivered_from["b"] == 1
        stacks["a"].crash()
        stacks["a"].restart()
        assert stacks["a"]._delivered_from == {}
        assert stacks["a"]._delivered_seqnos == {}
        assert stacks["a"]._sent == {}

    def test_stable_skip_fast_forwards_prefix(self):
        _, _, stacks = build_group(RstBroadcast)
        stack = stacks["a"]
        self._inject(stack, "b", 3)  # buffered beyond the skip frontier
        stack.note_stable_prefix("b", 3)
        # The skip settles 0..2 and absorbs the buffered 3.
        assert stack._delivered_from["b"] == 4
        assert stack._delivered_seqnos["b"] == set()
