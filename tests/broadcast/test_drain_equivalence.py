"""Indexed wakeup drain ≡ naive rescan drain, bit for bit.

The indexed engine must reproduce the naive drain's delivery schedule
exactly — same labels, same order, same simulation times — because the
naive pass semantics (snapshot the queue, scan in arrival order, repeat
while progress) are the *specification* of the deterministic tie-break.
These tests run every protocol through both drains on identical seeded
scenarios (random latencies, drops, duplicates) and compare:

* the full per-member delivery log (labels, positions, times),
* ``max_holdback`` (queue pressure must peak identically),
* ``duplicates_discarded``.

The regression test at the bottom pins the perf property itself: the
indexed drain evaluates each envelope's predicate once per unblocking
event, never rescanning bystanders (satellite of the wakeup-engine
issue).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.asend import ASendTotalOrder
from repro.broadcast.base import BroadcastProtocol
from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.fifo import FifoBroadcast
from repro.broadcast.lamport_total import LamportTotalOrder
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.rst import RstBroadcast
from repro.broadcast.sequencer import SequencerTotalOrder
from repro.graph.predicates import OccursAfter
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.types import EntityId, Envelope, Message, MessageId


def osend_envelope(label: MessageId, deps=None) -> Envelope:
    """A hand-built OSend envelope, for direct on_receive injection."""
    return Envelope(
        Message(label, "op", None),
        {"occurs_after": OccursAfter.after(deps)},
    )

MEMBERS = ("a", "b", "c")

Snapshot = Dict[EntityId, dict]


def _run(
    protocol_cls,
    drain_mode: str,
    seed: int,
    traffic: Callable[[Dict[EntityId, BroadcastProtocol], random.Random], None],
    drop: float = 0.0,
    duplicate: float = 0.0,
    **protocol_kwargs,
) -> Snapshot:
    """One seeded scenario under the given drain mode."""
    scheduler = Scheduler()
    net = Network(
        scheduler,
        latency=UniformLatency(0.1, 4.0),
        faults=FaultPlan(drop_probability=drop, duplicate_probability=duplicate),
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(MEMBERS)
    stacks: Dict[EntityId, BroadcastProtocol] = {}
    for member in MEMBERS:
        stack = protocol_cls(member, membership, **protocol_kwargs)
        stack.drain_mode = drain_mode
        net.register(stack)
        stacks[member] = stack
    traffic(stacks, random.Random(seed))
    scheduler.run()
    return {
        member: {
            "log": [
                (r.msg_id, r.position, r.time) for r in stack.delivery_log
            ],
            "max_holdback": stack.max_holdback,
            "duplicates": stack.duplicates_discarded,
            "holdback": sorted(stack.holdback_ids),
        }
        for member, stack in stacks.items()
    }


def assert_equivalent(protocol_cls, seed, traffic, **kwargs) -> None:
    indexed = _run(protocol_cls, "indexed", seed, traffic, **kwargs)
    naive = _run(protocol_cls, "naive", seed, traffic, **kwargs)
    assert indexed == naive


# -- traffic shapes ----------------------------------------------------------


def plain_traffic(sends: Sequence[Tuple[str, float]]):
    """Timed broadcasts from the given members, no protocol options."""

    def drive(stacks, _rng):
        for sender, at in sends:
            stack = stacks[sender]
            stack.scheduler.call_in(at, lambda s=stack: s.bcast("op"))

    return drive


def osend_traffic(sends: Sequence[Tuple[str, float]]):
    """OSend traffic with random Occurs-After subsets of earlier labels."""

    def drive(stacks, rng):
        issued: List[MessageId] = []

        def fire(stack):
            k = rng.randint(0, min(3, len(issued)))
            deps = rng.sample(issued, k) if k else None
            issued.append(stack.osend("op", occurs_after=deps))

        for sender, at in sends:
            stack = stacks[sender]
            stack.scheduler.call_in(at, lambda s=stack: fire(s))

    return drive


def asend_traffic(epochs: int):
    """One message per member per epoch (complete epochs, default close)."""

    def drive(stacks, rng):
        for epoch in range(epochs):
            for member, stack in stacks.items():
                at = rng.uniform(0.0, 2.0) + epoch
                stack.scheduler.call_in(
                    at,
                    lambda s=stack, e=epoch: s.asend("op", epoch=e),
                )

    return drive


def lamport_traffic(sends: Sequence[Tuple[str, float]]):
    def drive(stacks, _rng):
        for sender, at in sends:
            stack = stacks[sender]
            stack.scheduler.call_in(at, lambda s=stack: s.total_send("op"))

    return drive


def _send_plan(rng: random.Random, count: int) -> List[Tuple[str, float]]:
    return [
        (rng.choice(MEMBERS), round(rng.uniform(0.0, 6.0), 3))
        for _ in range(count)
    ]


# -- the six protocols -------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 12))
def test_osend_equivalence(seed, count):
    plan = _send_plan(random.Random(seed * 31 + 7), count)
    assert_equivalent(OSendBroadcast, seed, osend_traffic(plan))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 12))
def test_cbcast_equivalence(seed, count):
    plan = _send_plan(random.Random(seed * 17 + 3), count)
    assert_equivalent(CbcastBroadcast, seed, plain_traffic(plan))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 12))
def test_fifo_equivalence(seed, count):
    plan = _send_plan(random.Random(seed * 13 + 1), count)
    assert_equivalent(FifoBroadcast, seed, plain_traffic(plan))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 12))
def test_rst_equivalence(seed, count):
    plan = _send_plan(random.Random(seed * 11 + 5), count)
    assert_equivalent(RstBroadcast, seed, plain_traffic(plan))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), epochs=st.integers(1, 4))
def test_asend_equivalence(seed, epochs):
    assert_equivalent(ASendTotalOrder, seed, asend_traffic(epochs))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 10))
def test_sequencer_equivalence(seed, count):
    plan = _send_plan(random.Random(seed * 7 + 9), count)
    assert_equivalent(SequencerTotalOrder, seed, plain_traffic(plan))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(1, 10))
def test_lamport_equivalence(seed, count):
    plan = _send_plan(random.Random(seed * 5 + 2), count)
    assert_equivalent(LamportTotalOrder, seed, lamport_traffic(plan))


# -- faults: drops and duplicates -------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    count=st.integers(1, 12),
    drop=st.sampled_from([0.0, 0.1, 0.3]),
    duplicate=st.sampled_from([0.0, 0.15]),
)
def test_cbcast_equivalence_under_faults(seed, count, drop, duplicate):
    plan = _send_plan(random.Random(seed * 41 + 13), count)
    assert_equivalent(
        CbcastBroadcast,
        seed,
        plain_traffic(plan),
        drop=drop,
        duplicate=duplicate,
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    count=st.integers(1, 12),
    drop=st.sampled_from([0.0, 0.2]),
    duplicate=st.sampled_from([0.0, 0.2]),
)
def test_osend_equivalence_under_faults(seed, count, drop, duplicate):
    plan = _send_plan(random.Random(seed * 43 + 19), count)
    assert_equivalent(
        OSendBroadcast,
        seed,
        osend_traffic(plan),
        drop=drop,
        duplicate=duplicate,
    )


# -- the distinguishing pass-semantics case ---------------------------------


def test_pass_boundary_tie_break():
    """Queue [A, B, C, D]: A, C blocked on B; B blocked on D.

    D's arrival triggers the drain with all four pending.  The naive scan
    delivers D (pass 1), then B and C (pass 2 — C sits *after* B in
    arrival order, so B's delivery unblocks it mid-pass), then A (pass 3
    — it sits *before* B, so the cursor has already passed it).  The
    indexed engine must reproduce exactly this D, B, C, A schedule via
    its cursor-routing rule, not the naive scan.
    """
    a, b, c, d = (MessageId("b", i) for i in range(4))
    for mode in ("indexed", "naive"):
        scheduler = Scheduler()
        net = Network(scheduler, rng=RngRegistry(0))
        membership = GroupMembership(MEMBERS)
        stack = OSendBroadcast("a", membership)
        stack.drain_mode = mode
        net.register(stack)
        # Hand-deliver receives to control arrival order precisely.
        stack.on_receive("b", osend_envelope(a, [b]))
        stack.on_receive("b", osend_envelope(b, [d]))
        stack.on_receive("b", osend_envelope(c, [b]))
        assert stack.delivered == []
        stack.on_receive("b", osend_envelope(d))
        assert stack.delivered == [d, b, c, a], mode


# -- perf regression: no rescans --------------------------------------------


def test_indexed_drain_never_rescans_bystanders():
    """A reverse-arrival chain costs exactly one evaluation per envelope.

    Each delivery unblocks exactly one successor, so the indexed engine
    must evaluate each predicate once — while the naive drain rescans the
    whole queue per pass, paying O(N²).
    """
    n = 60
    counts = {}
    for mode in ("indexed", "naive"):
        scheduler = Scheduler()
        net = Network(scheduler, rng=RngRegistry(0))
        membership = GroupMembership(("a", "b"))
        receiver = OSendBroadcast("a", membership)
        receiver.drain_mode = mode
        net.register(receiver)
        labels = [MessageId("b", i) for i in range(n)]
        envelopes = [
            osend_envelope(labels[i], [labels[i - 1]] if i else None)
            for i in range(n)
        ]
        for envelope in reversed(envelopes):  # deepest dependency first
            receiver.on_receive("b", envelope)
        assert receiver.delivered == labels
        counts[mode] = receiver.predicate_evaluations
    assert counts["indexed"] == n
    # Naive: each of the n-1 blocked arrivals rescans everything pending
    # (n(n-1)/2), then the final drain delivers one per pass (n(n+1)/2).
    assert counts["naive"] == n * n


def test_wakeup_evaluations_bounded_by_unblocking_events():
    """No envelope is evaluated more than once per unblocking event.

    Upper bound: one evaluation at arrival plus one per (envelope,
    delivery) wake — far below the naive drain's rescans.
    """
    scheduler = Scheduler()
    net = Network(
        scheduler, latency=UniformLatency(0.1, 4.0), rng=RngRegistry(5)
    )
    membership = GroupMembership(MEMBERS)
    stacks = {}
    for member in MEMBERS:
        stacks[member] = net.register(CbcastBroadcast(member, membership))
    plan = _send_plan(random.Random(99), 15)
    for sender, at in plan:
        stack = stacks[sender]
        stack.scheduler.call_in(at, lambda s=stack: s.bcast("op"))
    scheduler.run()
    for stack in stacks.values():
        deliveries = stack.delivered_count
        arrivals = deliveries + stack.holdback_size
        # one eval per arrival + at most one per (pending envelope, delivery)
        assert stack.predicate_evaluations <= arrivals + deliveries * arrivals
