"""Tests for NACK-based loss recovery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.fifo import FifoBroadcast
from repro.broadcast.lamport_total import LamportTotalOrder
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.recovery import RecoveryAgent, protect_group
from repro.errors import ConfigurationError
from repro.group.membership import GroupMembership
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler


def lossy_group(protocol_cls, drop: float, seed: int = 0, members=("a", "b", "c")):
    scheduler = Scheduler()
    faults = FaultPlan(drop_probability=drop)
    net = Network(
        scheduler,
        latency=UniformLatency(0.2, 1.5),
        faults=faults,
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(members)
    stacks = {
        m: net.register(protocol_cls(m, membership)) for m in members
    }
    agents = protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
    return scheduler, net, faults, stacks, agents


class TestRepairPath:
    def test_lost_dependency_is_repaired(self):
        scheduler, net, faults, stacks, agents = lossy_group(OSendBroadcast, 0.0)
        # Lose m1 entirely, then send m2 depending on it.
        faults.drop_probability = 1.0
        m1 = stacks["a"].osend("first")
        scheduler.run()
        faults.drop_probability = 0.0
        m2 = stacks["a"].osend("second", occurs_after=m1)
        scheduler.run()
        for stack in stacks.values():
            assert stack.delivered == [m1, m2]
        assert sum(a.nacks_sent for a in agents.values()) > 0
        assert agents["a"].repairs_sent > 0

    def test_community_repair_when_origin_cannot_answer(self):
        """If the origin's copies to one member keep vanishing, another
        member that holds the envelope repairs it."""
        scheduler, net, faults, stacks, agents = lossy_group(OSendBroadcast, 0.0)
        m1 = stacks["a"].osend("first")
        scheduler.run()
        # Everyone has m1.  Now partition 'a' away and have 'b' (which has
        # the copy) send a dependent message that reaches 'c'.
        faults.partition({"b", "c"}, {"a"})
        m2 = stacks["b"].osend("second", occurs_after=m1)
        scheduler.run()
        assert stacks["c"].delivered == [m1, m2]

    def test_recovered_duplicates_are_harmless(self):
        scheduler, net, faults, stacks, agents = lossy_group(OSendBroadcast, 0.0)
        m1 = stacks["a"].osend("first")
        scheduler.run()
        # Manually NACK an already-received label: repair arrives as dup.
        agents["b"]._maybe_nack(m1, scheduler.now)
        scheduler.run()
        assert stacks["b"].delivered == [m1]


def run_until_complete(scheduler, stacks, agents, count, max_rounds=60):
    """Drain; run anti-entropy rounds until everyone delivered ``count``."""
    scheduler.run(max_events=300_000)
    for _ in range(max_rounds):
        if all(len(s.delivered) == count for s in stacks.values()):
            return
        for agent in agents.values():
            agent.anti_entropy_round()
        scheduler.run(max_events=300_000)


class TestLivenessUnderLoss:
    @pytest.mark.parametrize("protocol_cls", [OSendBroadcast, FifoBroadcast, CbcastBroadcast])
    def test_full_delivery_despite_heavy_loss(self, protocol_cls):
        scheduler, net, faults, stacks, agents = lossy_group(protocol_cls, 0.35, seed=5)
        count = 10
        previous = None
        for i in range(count):
            sender = ("a", "b", "c")[i % 3]
            if protocol_cls is OSendBroadcast:
                previous = stacks[sender].osend("op", occurs_after=previous)
            else:
                stacks[sender].bcast("op")
        run_until_complete(scheduler, stacks, agents, count)
        for stack in stacks.values():
            assert len(stack.delivered) == count
            assert stack.holdback_size == 0

    def test_lamport_total_recovers_fifo_gaps(self):
        scheduler, net, faults, stacks, agents = lossy_group(
            LamportTotalOrder, 0.25, seed=9
        )
        for i in range(6):
            stacks[("a", "b", "c")[i % 3]].total_send("op")
        run_until_complete(
            scheduler, stacks, agents, count=6 + 6 * 2
        )  # 6 data + 2 acks each
        orders = [s.app_delivered for s in stacks.values()]
        assert all(len(order) == 6 for order in orders)
        assert all(order == orders[0] for order in orders)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), drop=st.floats(0.05, 0.45))
    def test_osend_chain_always_completes(self, seed, drop):
        scheduler, net, faults, stacks, agents = lossy_group(
            OSendBroadcast, drop, seed=seed
        )
        previous = None
        for i in range(6):
            sender = ("a", "b", "c")[i % 3]
            previous = stacks[sender].osend("op", occurs_after=previous)
        run_until_complete(scheduler, stacks, agents, count=6)
        for stack in stacks.values():
            assert len(stack.delivered) == 6

    def test_scheduled_anti_entropy(self):
        scheduler, net, faults, stacks, agents = lossy_group(
            OSendBroadcast, 0.5, seed=3
        )
        for agent in agents.values():
            agent.schedule_anti_entropy(period=5.0, rounds=8)
        for i in range(5):
            stacks[("a", "b", "c")[i % 3]].osend("op")
        scheduler.run(max_events=300_000)
        delivered_counts = [len(s.delivered) for s in stacks.values()]
        assert all(c == 5 for c in delivered_counts)


class TestTermination:
    def test_event_loop_drains_when_idle(self):
        scheduler, net, faults, stacks, agents = lossy_group(OSendBroadcast, 0.0)
        stacks["a"].osend("op")
        scheduler.run(max_events=10_000)
        assert scheduler.pending == 0

    def test_unrecoverable_label_gives_up(self):
        from repro.types import MessageId

        scheduler, net, faults, stacks, agents = lossy_group(OSendBroadcast, 0.0)
        ghost = MessageId("nobody", 0)
        stacks["a"].osend("blocked", occurs_after=ghost)
        scheduler.run(max_events=100_000)
        # The agent stopped chasing after max_nacks_per_label attempts and
        # the queue drained (no livelock); the envelope stays held.
        assert scheduler.pending == 0
        assert stacks["a"].holdback_size == 1

    def test_validation(self):
        membership = GroupMembership(["a"])
        scheduler = Scheduler()
        net = Network(scheduler, rng=RngRegistry(0))
        stack = net.register(OSendBroadcast("a", membership))
        with pytest.raises(ConfigurationError):
            RecoveryAgent(stack, scan_interval=0.0)
        with pytest.raises(ConfigurationError):
            RecoveryAgent(stack, max_nacks_per_label=0)
