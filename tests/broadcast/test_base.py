"""Tests for the shared broadcast chassis."""

from __future__ import annotations

import pytest

from repro.broadcast.unordered import UnorderedBroadcast
from repro.errors import ProtocolError
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from tests.conftest import build_group


class TestSendPath:
    def test_bcast_returns_sequential_labels(self):
        _, __, stacks = build_group(UnorderedBroadcast)
        first = stacks["a"].bcast("op")
        second = stacks["a"].bcast("op")
        assert first.sender == "a" and first.seqno == 0
        assert second.seqno == 1

    def test_unknown_options_rejected(self):
        _, __, stacks = build_group(UnorderedBroadcast)
        with pytest.raises(ProtocolError):
            stacks["a"].bcast("op", nonsense=True)

    def test_send_time_recorded(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast)
        scheduler.call_at(3.0, stacks["a"].bcast, "op")
        scheduler.run()
        label = stacks["a"].delivered[0]
        assert stacks["a"].send_time(label) == 3.0
        assert stacks["b"].send_time(label) is None


class TestReceivePath:
    def test_duplicates_discarded(self):
        scheduler = Scheduler()
        net = Network(
            scheduler,
            latency=ConstantLatency(1.0),
            faults=FaultPlan(duplicate_probability=1.0),
            rng=RngRegistry(0),
        )
        from repro.group.membership import GroupMembership

        membership = GroupMembership(["a", "b"])
        stacks = {}
        for member in ("a", "b"):
            stacks[member] = net.register(
                UnorderedBroadcast(member, membership)
            )
        stacks["a"].bcast("op")
        scheduler.run()
        assert len(stacks["b"].delivered) == 1
        assert stacks["b"].duplicates_discarded == 1

    def test_delivery_log_positions_are_sequential(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast)
        for _ in range(3):
            stacks["a"].bcast("op")
        scheduler.run()
        positions = [r.position for r in stacks["b"].delivery_log]
        assert positions == [0, 1, 2]

    def test_callbacks_invoked_per_delivery(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast)
        seen = []
        stacks["b"].on_deliver(lambda env: seen.append(env.msg_id))
        stacks["a"].bcast("op")
        scheduler.run()
        assert len(seen) == 1

    def test_has_delivered(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast)
        label = stacks["a"].bcast("op")
        scheduler.run()
        assert stacks["c"].has_delivered(label)

    def test_trace_records_hold_and_deliver(self):
        scheduler, net, stacks = build_group(UnorderedBroadcast)
        stacks["a"].bcast("op")
        scheduler.run()
        assert len(net.trace.of_kind("hold")) == 3
        assert len(net.trace.of_kind("deliver")) == 3

    def test_sender_delivers_its_own_broadcast(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast)
        label = stacks["a"].bcast("op")
        scheduler.run()
        assert label in stacks["a"].delivered
