"""Tests for the paper's ASend epoch-batched total order."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.asend import ASendTotalOrder
from repro.errors import ProtocolError
from repro.net.latency import UniformLatency
from tests.conftest import build_group


class TestEpochBatching:
    def test_identical_total_order_at_all_members(self):
        scheduler, _, stacks = build_group(
            ASendTotalOrder, latency=UniformLatency(0.1, 4.0), seed=5
        )
        for member in ("a", "b", "c"):
            stacks[member].asend("op", epoch=0)
        scheduler.run()
        orders = [s.delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == 3

    def test_epoch_delivery_is_label_sorted(self):
        scheduler, _, stacks = build_group(
            ASendTotalOrder, latency=UniformLatency(0.1, 4.0), seed=6
        )
        for member in ("c", "a", "b"):
            stacks[member].asend("op", epoch=0)
        scheduler.run()
        delivered = stacks["a"].delivered
        assert delivered == sorted(delivered)

    def test_nothing_delivered_until_epoch_closes(self):
        scheduler, _, stacks = build_group(ASendTotalOrder, seed=7)
        stacks["a"].asend("op", epoch=0)
        stacks["b"].asend("op", epoch=0)
        scheduler.run()
        # Only 2 of 3 expected messages: everything held back.
        assert all(s.delivered == [] for s in stacks.values())
        assert all(s.holdback_size == 2 for s in stacks.values())
        assert all(not s.epoch_closed(0) for s in stacks.values())
        # The third message unblocks the batch.
        stacks["c"].asend("op", epoch=0)
        scheduler.run()
        assert all(len(s.delivered) == 3 for s in stacks.values())

    def test_epochs_delivered_in_order(self):
        scheduler, _, stacks = build_group(
            ASendTotalOrder, latency=UniformLatency(0.1, 4.0), seed=8
        )
        # Issue epoch 1 traffic before epoch 0 finishes.
        for member in ("a", "b", "c"):
            stacks[member].asend("late", epoch=1)
            stacks[member].asend("early", epoch=0)
        scheduler.run()
        operations = [
            env.message.operation for env in stacks["b"].delivered_envelopes
        ]
        assert operations == ["early"] * 3 + ["late"] * 3
        assert stacks["b"].current_epoch == 2

    def test_custom_expected_count(self):
        scheduler, _, stacks = build_group(
            ASendTotalOrder, seed=9, expected_per_epoch=1
        )
        stacks["a"].asend("solo", epoch=0)
        scheduler.run()
        assert all(len(s.delivered) == 1 for s in stacks.values())

    def test_callable_expected_count(self):
        scheduler, _, stacks = build_group(
            ASendTotalOrder,
            seed=10,
            expected_per_epoch=lambda epoch: 3 if epoch == 0 else 1,
        )
        for member in ("a", "b", "c"):
            stacks[member].asend("batch", epoch=0)
        stacks["a"].asend("single", epoch=1)
        scheduler.run()
        assert all(len(s.delivered) == 4 for s in stacks.values())

    def test_causal_ancestor_respected_within_epoch_order(self):
        scheduler, _, stacks = build_group(
            ASendTotalOrder, latency=UniformLatency(0.1, 2.0), seed=11
        )
        anchor = stacks["a"].asend("anchor", epoch=0, occurs_after=None)
        stacks["b"].asend("dep", epoch=0, occurs_after=None)
        stacks["c"].asend("dep", epoch=0, occurs_after=None)
        scheduler.run()
        assert all(len(s.delivered) == 3 for s in stacks.values())


class TestValidation:
    def test_negative_epoch_rejected(self):
        _, __, stacks = build_group(ASendTotalOrder)
        with pytest.raises(ProtocolError):
            stacks["a"].asend("op", epoch=-1)

    def test_zero_expected_rejected(self):
        from repro.group.membership import GroupMembership

        with pytest.raises(ProtocolError):
            ASendTotalOrder(
                "a", GroupMembership(["a"]), expected_per_epoch=0
            )

    def test_overfull_epoch_rejected(self):
        scheduler, _, stacks = build_group(
            ASendTotalOrder, seed=12, expected_per_epoch=1
        )
        stacks["a"].asend("op", epoch=0)
        stacks["b"].asend("op", epoch=0)
        with pytest.raises(ProtocolError):
            scheduler.run()


class TestTotalOrderProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        epochs=st.integers(1, 4),
    )
    def test_random_runs_agree_on_total_order(self, seed, epochs):
        scheduler, _, stacks = build_group(
            ASendTotalOrder, latency=UniformLatency(0.1, 3.0), seed=seed
        )
        for epoch in range(epochs):
            for member in ("a", "b", "c"):
                stacks[member].asend("op", epoch=epoch)
        scheduler.run()
        orders = [s.delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == 3 * epochs
