"""Tests for stability tracking and store compaction."""

from __future__ import annotations

from repro.broadcast.gc import StabilityTracker, track_group
from repro.broadcast.osend import OSendBroadcast
from repro.broadcast.recovery import protect_group
from repro.net.faults import FaultPlan
from repro.net.latency import UniformLatency
from repro.group.membership import GroupMembership
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from tests.conftest import build_group


def tracked_group(seed: int = 0, faults: FaultPlan | None = None):
    scheduler = Scheduler()
    net = Network(
        scheduler,
        latency=UniformLatency(0.2, 1.5),
        faults=faults,
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(["a", "b", "c"])
    stacks = {
        m: net.register(OSendBroadcast(m, membership)) for m in ("a", "b", "c")
    }
    trackers = track_group(stacks)
    return scheduler, stacks, trackers


class TestPrefixes:
    def test_local_prefix_tracks_contiguous_deliveries(self):
        scheduler, stacks, trackers = tracked_group()
        for _ in range(3):
            stacks["a"].osend("op")
        scheduler.run()
        assert trackers["b"].local_prefix("a") == 3
        assert trackers["b"].local_prefix("c") == 0

    def test_frontier_is_zero_before_gossip(self):
        scheduler, stacks, trackers = tracked_group()
        stacks["a"].osend("op")
        scheduler.run()
        # Without hearing from others, nothing can be considered stable.
        assert trackers["a"].stable_frontier("a") == 0


class TestCompaction:
    def test_gossip_reclaims_stable_bodies(self):
        scheduler, stacks, trackers = tracked_group()
        for _ in range(4):
            stacks["a"].osend("op")
        scheduler.run()
        before = trackers["b"].store_size
        assert before >= 4
        for tracker in trackers.values():
            tracker.gossip_round()
        scheduler.run()
        # One more exchange so everyone has everyone's vector.
        for tracker in trackers.values():
            tracker.gossip_round()
        scheduler.run()
        for tracker in trackers.values():
            assert tracker.stable_frontier("a") == 4
            assert tracker.envelopes_reclaimed >= 4
            assert tracker.store_size == 0

    def test_unstable_bodies_survive_compaction(self):
        faults = FaultPlan()
        scheduler, stacks, trackers = tracked_group(faults=faults)
        faults.partition({"a", "b"}, {"c"})
        stacks["a"].osend("op")  # never reaches c
        scheduler.run()
        faults.heal()
        for tracker in trackers.values():
            tracker.gossip_round()
        scheduler.run()
        # c's prefix for a is 0, so nothing may be reclaimed at a or b.
        assert trackers["a"].stable_frontier("a") == 0
        assert trackers["a"].store_size >= 1

    def test_gc_composes_with_recovery(self):
        faults = FaultPlan()
        scheduler, stacks, trackers = tracked_group(faults=faults)
        agents = protect_group(stacks, scan_interval=1.0, nack_backoff=2.0)
        faults.partition({"a", "b"}, {"c"})
        m1 = stacks["a"].osend("op")
        scheduler.run()
        faults.heal()
        # GC ran but must not have dropped m1 (c still lacks it)...
        for tracker in trackers.values():
            tracker.gossip_round()
        scheduler.run()
        assert stacks["a"].envelope_of(m1) is not None
        # ...so recovery can still repair c via anti-entropy.
        agents["a"].anti_entropy_round()
        scheduler.run()
        assert m1 in stacks["c"].delivered

    def test_scheduled_gossip(self):
        scheduler, stacks, trackers = tracked_group()
        for tracker in trackers.values():
            tracker.schedule_gossip(period=2.0, rounds=3)
        stacks["a"].osend("op")
        scheduler.run()
        assert all(t.stable_frontier("a") == 1 for t in trackers.values())
        assert all(t.store_size == 0 for t in trackers.values())
