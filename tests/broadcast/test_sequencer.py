"""Tests for the fixed-sequencer total order and its epoch failover."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.sequencer import SequencerTotalOrder
from repro.errors import ProtocolError
from repro.net.latency import UniformLatency
from tests.conftest import build_group, mid


class TestRoles:
    def test_rank_zero_member_is_sequencer(self):
        _, __, stacks = build_group(SequencerTotalOrder)
        assert stacks["a"].is_sequencer
        assert not stacks["b"].is_sequencer
        assert stacks["b"].sequencer_id == "a"


class TestTotalOrder:
    def test_identical_app_order_at_all_members(self):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 4.0), seed=3
        )
        for member in ("a", "b", "c"):
            for _ in range(3):
                stacks[member].bcast("op")
        scheduler.run()
        orders = [s.app_delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == 9

    def test_order_bindings_hidden_from_callbacks(self):
        scheduler, _, stacks = build_group(SequencerTotalOrder, seed=4)
        seen = []
        stacks["b"].on_deliver(lambda env: seen.append(env.message.operation))
        stacks["a"].bcast("app_op")
        scheduler.run()
        assert seen == ["app_op"]

    def test_global_sequence_numbers_are_consecutive(self):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 2.0), seed=5
        )
        labels = [stacks[m].bcast("op") for m in ("a", "b", "c")]
        scheduler.run()
        sequences = sorted(
            stacks["c"].global_sequence_of(label) for label in labels
        )
        assert sequences == [0, 1, 2]

    def test_order_message_cost_is_one_per_app_broadcast(self):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 2.0), seed=6
        )
        for member in ("a", "b", "c"):
            stacks[member].bcast("op")
        scheduler.run()
        assert stacks["a"].order_messages_sent == 3

    def test_delivery_blocked_until_binding_arrives(self):
        # Make the sequencer's responses very slow: data arrives long
        # before bindings, so nothing is app-delivered in between.
        from repro.net.latency import ConstantLatency, PerPairLatency

        latency = PerPairLatency(
            {
                ("a", "b"): ConstantLatency(10.0),
                ("a", "c"): ConstantLatency(10.0),
                ("a", "a"): ConstantLatency(10.0),
            },
            default=ConstantLatency(0.5),
        )
        scheduler, _, stacks = build_group(SequencerTotalOrder, latency=latency)
        stacks["b"].bcast("op")
        scheduler.run_until(5.0)
        assert stacks["c"].app_delivered == []
        scheduler.run()
        assert len(stacks["c"].app_delivered) == 1


class TestEpochFailover:
    def test_successor_adopts_bindings_and_keeps_ordering(self):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 1.0), seed=11
        )
        membership = stacks["a"].group
        for member in ("a", "b", "c"):
            stacks[member].bcast("pre")
        scheduler.run()
        stacks["a"].crash()
        membership.leave("a")
        scheduler.run()
        assert stacks["b"].is_sequencer
        for member in ("b", "c"):
            stacks[member].bcast("post")
        scheduler.run()
        orders = [stacks[m].app_delivered for m in ("b", "c")]
        assert orders[0] == orders[1]
        assert len(orders[0]) == 5
        # Post-handoff assignments carry the new epoch; the adopted
        # prefix keeps the old one.
        epochs = {
            seq: epoch for seq, (epoch, _) in stacks["b"].binding_table.items()
        }
        assert epochs[0] == 0
        assert max(epochs.values()) == membership.view.view_id

    def test_handoff_reissues_orders_for_unbound_data(self):
        # The old sequencer's binding broadcasts are very slow: it
        # crashes while every member holds data it cannot place.  The
        # successor must re-issue those orders under its own epoch.
        from repro.net.latency import ConstantLatency, PerPairLatency

        latency = PerPairLatency(
            {
                ("a", "a"): ConstantLatency(60.0),
                ("a", "b"): ConstantLatency(60.0),
                ("a", "c"): ConstantLatency(60.0),
            },
            default=ConstantLatency(0.3),
        )
        scheduler, _, stacks = build_group(SequencerTotalOrder, latency=latency)
        membership = stacks["a"].group
        stacks["b"].bcast("wedged")
        scheduler.run_until(5.0)
        assert stacks["c"].app_delivered == []
        stacks["a"].crash()
        membership.leave("a")
        scheduler.run_until(20.0)
        assert len(stacks["b"].app_delivered) == 1
        assert stacks["b"].app_delivered == stacks["c"].app_delivered
        handoffs = [h for h in stacks["b"].handoffs if h["took_over"]]
        assert len(handoffs) == 1
        assert handoffs[0]["reissued"] >= 1
        # The old epoch-0 binding still in flight loses to (or agrees
        # with) the epoch-1 re-issue once it finally lands.
        scheduler.run()
        assert stacks["b"].app_delivered == stacks["c"].app_delivered

    def test_cross_epoch_conflict_higher_epoch_wins(self):
        _, __, stacks = build_group(SequencerTotalOrder)
        sequencer = stacks["a"]
        old, new = mid("b", 0), mid("c", 0)
        sequencer._accept_binding(5, old, 0)
        sequencer._accept_binding(5, new, 1)
        assert sequencer.binding_table[5] == (1, new)
        # A stale replay of the deposed epoch's binding is ignored.
        sequencer._accept_binding(5, old, 0)
        assert sequencer.binding_table[5] == (1, new)

    def test_same_epoch_conflict_is_protocol_error(self):
        _, __, stacks = build_group(SequencerTotalOrder)
        sequencer = stacks["a"]
        sequencer._accept_binding(3, mid("b", 0), 2)
        with pytest.raises(ProtocolError):
            sequencer._accept_binding(3, mid("c", 0), 2)

    def test_restarted_sequencer_resyncs_counter(self):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 1.0), seed=9
        )
        for member in ("a", "b", "c"):
            stacks[member].bcast("pre")
        scheduler.run()
        stacks["a"].crash()
        stacks["a"].restart()
        # The assignment counter is durable high-water state: a fresh
        # incarnation must not hand out positions 0..2 again.
        assert stacks["a"]._next_seq_to_assign == 3
        label = stacks["b"].bcast("post")
        scheduler.run()
        assert stacks["b"].global_sequence_of(label) == 3
        orders = [stacks[m].app_delivered for m in ("b", "c")]
        assert orders[0] == orders[1]
        assert len(orders[0]) == 4


class TestTotalOrderProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        sends=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=12),
    )
    def test_random_runs_agree(self, seed, sends):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 3.0), seed=seed
        )
        for sender in sends:
            stacks[sender].bcast("op")
        scheduler.run()
        orders = [s.app_delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == len(sends)
