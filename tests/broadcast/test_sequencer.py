"""Tests for the fixed-sequencer total order."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.sequencer import SequencerTotalOrder
from repro.net.latency import UniformLatency
from tests.conftest import build_group


class TestRoles:
    def test_rank_zero_member_is_sequencer(self):
        _, __, stacks = build_group(SequencerTotalOrder)
        assert stacks["a"].is_sequencer
        assert not stacks["b"].is_sequencer
        assert stacks["b"].sequencer_id == "a"


class TestTotalOrder:
    def test_identical_app_order_at_all_members(self):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 4.0), seed=3
        )
        for member in ("a", "b", "c"):
            for _ in range(3):
                stacks[member].bcast("op")
        scheduler.run()
        orders = [s.app_delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == 9

    def test_order_bindings_hidden_from_callbacks(self):
        scheduler, _, stacks = build_group(SequencerTotalOrder, seed=4)
        seen = []
        stacks["b"].on_deliver(lambda env: seen.append(env.message.operation))
        stacks["a"].bcast("app_op")
        scheduler.run()
        assert seen == ["app_op"]

    def test_global_sequence_numbers_are_consecutive(self):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 2.0), seed=5
        )
        labels = [stacks[m].bcast("op") for m in ("a", "b", "c")]
        scheduler.run()
        sequences = sorted(
            stacks["c"].global_sequence_of(label) for label in labels
        )
        assert sequences == [0, 1, 2]

    def test_order_message_cost_is_one_per_app_broadcast(self):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 2.0), seed=6
        )
        for member in ("a", "b", "c"):
            stacks[member].bcast("op")
        scheduler.run()
        assert stacks["a"].order_messages_sent == 3

    def test_delivery_blocked_until_binding_arrives(self):
        # Make the sequencer's responses very slow: data arrives long
        # before bindings, so nothing is app-delivered in between.
        from repro.net.latency import ConstantLatency, PerPairLatency

        latency = PerPairLatency(
            {
                ("a", "b"): ConstantLatency(10.0),
                ("a", "c"): ConstantLatency(10.0),
                ("a", "a"): ConstantLatency(10.0),
            },
            default=ConstantLatency(0.5),
        )
        scheduler, _, stacks = build_group(SequencerTotalOrder, latency=latency)
        stacks["b"].bcast("op")
        scheduler.run_until(5.0)
        assert stacks["c"].app_delivered == []
        scheduler.run()
        assert len(stacks["c"].app_delivered) == 1


class TestTotalOrderProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        sends=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=12),
    )
    def test_random_runs_agree(self, seed, sends):
        scheduler, _, stacks = build_group(
            SequencerTotalOrder, latency=UniformLatency(0.1, 3.0), seed=seed
        )
        for sender in sends:
            stacks[sender].bcast("op")
        scheduler.run()
        orders = [s.app_delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == len(sends)
