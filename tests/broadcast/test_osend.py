"""Tests for the paper's OSend primitive."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.causal_check import verify_against_graph
from repro.broadcast.osend import OSendBroadcast
from repro.errors import ProtocolError
from repro.graph.predicates import OccursAfter
from repro.net.latency import ConstantLatency, PerPairLatency, UniformLatency
from tests.conftest import build_group


class TestOrderingSemantics:
    def test_declared_dependency_enforced(self):
        # m2 declares Occurs-After(m1); even if m1 is slow to c, c holds m2.
        latency = PerPairLatency(
            {("a", "c"): ConstantLatency(10.0)}, default=ConstantLatency(1.0)
        )
        scheduler, _, stacks = build_group(OSendBroadcast, latency=latency)
        m1 = stacks["a"].osend("first")
        m2 = stacks["b"].osend("second", occurs_after=m1)
        scheduler.run()
        at_c = stacks["c"].delivered
        assert at_c.index(m1) < at_c.index(m2)

    def test_undeclared_causality_is_ignored(self):
        """The semantic-vs-incidental distinction (paper footnote 1).

        b happens to see m1 before sending m2 but declares no dependency,
        so m2 may overtake m1 — unlike CBCAST.
        """
        latency = PerPairLatency(
            {("a", "c"): ConstantLatency(10.0)}, default=ConstantLatency(1.0)
        )
        scheduler, _, stacks = build_group(OSendBroadcast, latency=latency)
        m1 = stacks["a"].osend("first")
        sent = []

        def maybe_reply(env):
            if env.msg_id == m1 and not sent:
                sent.append(stacks["b"].osend("spontaneous"))  # no deps

        stacks["b"].on_deliver(maybe_reply)
        scheduler.run()
        at_c = stacks["c"].delivered
        assert at_c.index(sent[0]) < at_c.index(m1)

    def test_and_dependency_waits_for_all(self):
        latency = PerPairLatency(
            {
                ("a", "c"): ConstantLatency(5.0),
                ("b", "c"): ConstantLatency(8.0),
            },
            default=ConstantLatency(1.0),
        )
        scheduler, _, stacks = build_group(OSendBroadcast, latency=latency)
        m1 = stacks["a"].osend("left")
        m2 = stacks["b"].osend("right")
        sync = stacks["a"].osend("sync", occurs_after=[m1, m2])
        scheduler.run()
        at_c = stacks["c"].delivered
        assert at_c.index(sync) > at_c.index(m1)
        assert at_c.index(sync) > at_c.index(m2)

    def test_chain_of_dependencies(self):
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=UniformLatency(0.1, 5.0), seed=3
        )
        previous = None
        labels = []
        for i in range(6):
            previous = stacks["a"].osend("step", occurs_after=previous)
            labels.append(previous)
        scheduler.run()
        for stack in stacks.values():
            positions = [stack.delivered.index(l) for l in labels]
            assert positions == sorted(positions)

    def test_occurs_after_object_accepted(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        m1 = stacks["a"].osend("first")
        stacks["a"].osend("second", occurs_after=OccursAfter.after(m1))
        scheduler.run()
        assert all(len(s.delivered) == 2 for s in stacks.values())

    def test_self_dependency_rejected(self):
        _, __, stacks = build_group(OSendBroadcast)
        m1 = stacks["a"].osend("first")
        # A message that names itself cannot exist; simulate via the next
        # label which would equal the allocator's output.
        from repro.types import MessageId

        with pytest.raises(ProtocolError):
            stacks["a"].osend(
                "bad", occurs_after=MessageId("a", 1)
            )

    def test_dependency_on_missing_message_blocks_forever(self):
        from repro.types import MessageId

        scheduler, _, stacks = build_group(OSendBroadcast)
        ghost = MessageId("nobody", 0)
        blocked = stacks["a"].osend("blocked", occurs_after=ghost)
        scheduler.run()
        for stack in stacks.values():
            assert blocked not in stack.delivered
            assert stack.holdback_size == 1
            assert stack.blocking_ancestors(blocked) == frozenset({ghost})


class TestGraphExtraction:
    def test_members_extract_identical_graphs(self):
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=UniformLatency(0.1, 3.0), seed=9
        )
        m1 = stacks["a"].osend("one")
        m2 = stacks["b"].osend("two", occurs_after=m1)
        stacks["c"].osend("three", occurs_after=[m1, m2])
        scheduler.run()
        graphs = [s.graph for s in stacks.values()]
        reference = graphs[0]
        for graph in graphs[1:]:
            assert set(graph.nodes) == set(reference.nodes)
            for node in graph.nodes:
                assert graph.ancestors_of(node) == reference.ancestors_of(node)

    def test_extracted_graph_matches_declarations(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        m1 = stacks["a"].osend("one")
        m2 = stacks["b"].osend("two", occurs_after=m1)
        scheduler.run()
        graph = stacks["c"].graph
        assert graph.ancestors_of(m2) == frozenset({m1})
        assert graph.ancestors_of(m1) == frozenset()

    def test_last_delivered(self):
        scheduler, _, stacks = build_group(OSendBroadcast)
        assert stacks["a"].last_delivered() is None
        m1 = stacks["a"].osend("one")
        scheduler.run()
        assert stacks["a"].last_delivered() == m1


class TestCausalSafetyProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        data=st.data(),
    )
    def test_random_dependency_scripts_never_violate(self, seed, data):
        """Random Occurs-After graphs are always respected at delivery."""
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=UniformLatency(0.1, 4.0), seed=seed
        )
        members = list(stacks)
        count = data.draw(st.integers(1, 10))
        issued = []
        for i in range(count):
            sender = data.draw(st.sampled_from(members), label=f"sender{i}")
            deps = (
                data.draw(
                    st.sets(st.sampled_from(issued), max_size=3),
                    label=f"deps{i}",
                )
                if issued
                else set()
            )
            advance = data.draw(st.floats(0.0, 2.0), label=f"gap{i}")
            scheduler.run_until(scheduler.now + advance)
            label = stacks[sender].osend("op", None, frozenset(deps))
            issued.append(label)
        scheduler.run()
        # Every member delivered everything, respecting the declared graph.
        reference = stacks[members[0]].graph
        sequences = {m: s.delivered for m, s in stacks.items()}
        assert verify_against_graph(reference, sequences) == []
        for stack in stacks.values():
            assert stack.holdback_size == 0
