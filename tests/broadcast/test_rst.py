"""Tests for Raynal-Schiper-Toueg causal broadcast."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.rst import RstBroadcast
from repro.net.latency import ConstantLatency, PerPairLatency, UniformLatency
from tests.conftest import build_group


class TestCausalDelivery:
    def test_reply_never_overtakes_original(self):
        latency = PerPairLatency(
            {("a", "c"): ConstantLatency(10.0)}, default=ConstantLatency(1.0)
        )
        scheduler, _, stacks = build_group(RstBroadcast, latency=latency)
        m1 = stacks["a"].bcast("ask")
        replied = []

        def reply(env):
            if env.msg_id == m1 and not replied:
                replied.append(stacks["b"].bcast("reply"))

        stacks["b"].on_deliver(reply)
        scheduler.run()
        at_c = stacks["c"].delivered
        assert at_c.index(m1) < at_c.index(replied[0])

    def test_own_messages_in_fifo_order(self):
        scheduler, _, stacks = build_group(
            RstBroadcast, latency=UniformLatency(0.1, 4.0), seed=3
        )
        labels = [stacks["a"].bcast("op") for _ in range(5)]
        scheduler.run()
        for stack in stacks.values():
            from_a = [l for l in stack.delivered if l.sender == "a"]
            assert from_a == labels

    def test_concurrent_messages_any_order(self):
        latency = PerPairLatency(
            {("a", "b"): ConstantLatency(9.0)}, default=ConstantLatency(1.0)
        )
        scheduler, _, stacks = build_group(RstBroadcast, latency=latency)
        ma = stacks["a"].bcast("op")
        mc = stacks["c"].bcast("op")
        scheduler.run()
        at_b = stacks["b"].delivered
        assert at_b.index(mc) < at_b.index(ma)

    def test_matrix_entries_grow(self):
        scheduler, _, stacks = build_group(RstBroadcast, seed=4)
        for member in ("a", "b", "c"):
            stacks[member].bcast("op")
        scheduler.run()
        assert stacks["a"].matrix_entries() > 0

    def test_missing_for_names_owed_labels(self):
        from repro.net.faults import FaultPlan
        from repro.group.membership import GroupMembership
        from repro.net.network import Network
        from repro.sim.rng import RngRegistry
        from repro.sim.scheduler import Scheduler

        scheduler = Scheduler()
        faults = FaultPlan()
        net = Network(
            scheduler, latency=ConstantLatency(1.0), faults=faults,
            rng=RngRegistry(0),
        )
        membership = GroupMembership(["a", "b", "c"])
        stacks = {
            m: net.register(RstBroadcast(m, membership))
            for m in ("a", "b", "c")
        }
        faults.partition({"a", "b"}, {"c"})
        m1 = stacks["a"].bcast("lost-to-c")
        scheduler.run()
        faults.heal()
        stacks["b"].bcast("dependent")
        scheduler.run()
        pending = stacks["c"].holdback_envelopes
        assert pending
        assert stacks["c"].missing_for(pending[0]) == frozenset({m1})


class TestCausalSafetyProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        sends=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=10),
    )
    def test_random_traffic_causally_safe_and_live(self, seed, sends):
        scheduler, _, stacks = build_group(
            RstBroadcast, latency=UniformLatency(0.1, 4.0), seed=seed
        )
        for sender in sends:
            stacks[sender].bcast("op")
        scheduler.run()
        # Liveness.
        assert all(len(s.delivered) == len(sends) for s in stacks.values())
        # Per-sender FIFO (implied by causal order).
        for stack in stacks.values():
            seen = {}
            for label in stack.delivered:
                assert label.seqno == seen.get(label.sender, -1) + 1
                seen[label.sender] = label.seqno
