"""Tests for vector-clock causal broadcast (CBCAST)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.causal_check import verify_against_clocks
from repro.broadcast.cbcast import CbcastBroadcast
from repro.clocks.vector import VectorClock
from repro.net.latency import ConstantLatency, PerPairLatency, UniformLatency
from tests.conftest import build_group


class TestCausalDelivery:
    def test_reply_never_overtakes_original(self):
        # a broadcasts m1; b replies m2 after delivering m1; even if m1 is
        # slow to c, c must deliver m1 before m2.
        latency = PerPairLatency(
            {("a", "c"): ConstantLatency(10.0)}, default=ConstantLatency(1.0)
        )
        scheduler, _, stacks = build_group(CbcastBroadcast, latency=latency)
        m1 = stacks["a"].bcast("ask")
        stacks["b"].on_deliver(
            lambda env: stacks["b"].bcast("reply")
            if env.msg_id == m1
            else None
        )
        scheduler.run()
        order_at_c = stacks["c"].delivered
        assert order_at_c.index(m1) < order_at_c.index(
            next(l for l in order_at_c if l.sender == "b")
        )

    def test_own_messages_self_delivered_in_order(self):
        scheduler, _, stacks = build_group(CbcastBroadcast, seed=2)
        labels = [stacks["a"].bcast("op") for _ in range(5)]
        scheduler.run()
        delivered_own = [l for l in stacks["a"].delivered if l.sender == "a"]
        assert delivered_own == labels

    def test_two_sends_before_self_delivery_get_distinct_clocks(self):
        scheduler, _, stacks = build_group(CbcastBroadcast, seed=2)
        stacks["a"].bcast("op")
        stacks["a"].bcast("op")
        scheduler.run()
        clocks = [
            env.metadata["vclock"]
            for env in stacks["b"].delivered_envelopes
        ]
        assert clocks[0] != clocks[1]
        assert clocks[0] < clocks[1]

    def test_concurrent_messages_may_arrive_in_any_order(self):
        latency = PerPairLatency(
            {("a", "b"): ConstantLatency(9.0)}, default=ConstantLatency(1.0)
        )
        scheduler, _, stacks = build_group(CbcastBroadcast, latency=latency)
        ma = stacks["a"].bcast("op")
        mc = stacks["c"].bcast("op")
        scheduler.run()
        at_b = stacks["b"].delivered
        at_c = stacks["c"].delivered
        assert at_b.index(mc) < at_b.index(ma)
        assert at_c.index(mc) < at_c.index(ma) or at_c.index(ma) < at_c.index(mc)

    def test_local_clock_reflects_deliveries(self):
        scheduler, _, stacks = build_group(CbcastBroadcast, seed=5)
        stacks["a"].bcast("op")
        stacks["b"].bcast("op")
        scheduler.run()
        assert stacks["c"].clock["a"] == 1
        assert stacks["c"].clock["b"] == 1

    def test_metadata_entries_counts_clock_size(self):
        scheduler, _, stacks = build_group(CbcastBroadcast, seed=5)
        stacks["a"].bcast("op")
        scheduler.run()
        env = stacks["b"].delivered_envelopes[0]
        assert stacks["b"].metadata_entries(env) == 1


class TestCausalSafetyProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        script=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.floats(0.0, 5.0)),
            min_size=1,
            max_size=12,
        ),
    )
    def test_no_causal_violations_under_random_traffic(self, seed, script):
        """Random senders/times/latencies never violate clock causality."""
        scheduler, _, stacks = build_group(
            CbcastBroadcast, latency=UniformLatency(0.1, 4.0), seed=seed
        )
        for sender, time in script:
            scheduler.call_at(time, stacks[sender].bcast, "op")
        scheduler.run()
        clocks: dict = {}
        for stack in stacks.values():
            for env in stack.delivered_envelopes:
                clocks[env.msg_id] = env.metadata["vclock"]
        sequences = {m: s.delivered for m, s in stacks.items()}
        assert verify_against_clocks(clocks, sequences) == []
        # Liveness: everything delivered everywhere.
        total = len(script)
        assert all(len(s.delivered) == total for s in stacks.values())
