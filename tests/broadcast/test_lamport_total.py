"""Tests for the all-ack Lamport total order baseline."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.lamport_total import LamportTotalOrder
from repro.net.latency import UniformLatency
from tests.conftest import build_group


class TestTotalOrder:
    def test_identical_app_order_at_all_members(self):
        scheduler, _, stacks = build_group(
            LamportTotalOrder, latency=UniformLatency(0.1, 4.0), seed=2
        )
        for member in ("a", "b", "c"):
            stacks[member].total_send("op")
        scheduler.run()
        orders = [s.app_delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == 3

    def test_order_follows_lamport_stamps(self):
        scheduler, _, stacks = build_group(
            LamportTotalOrder, latency=UniformLatency(0.1, 4.0), seed=3
        )
        labels = [stacks[m].total_send("op") for m in ("a", "b", "c")]
        scheduler.run()
        delivered = stacks["a"].app_delivered
        stamps = [stacks["a"].stamp_of(label) for label in delivered]
        assert stamps == sorted(stamps)

    def test_acks_hidden_from_callbacks(self):
        scheduler, _, stacks = build_group(LamportTotalOrder, seed=4)
        seen = []
        stacks["b"].on_deliver(lambda env: seen.append(env.message.operation))
        stacks["a"].total_send("app_op")
        scheduler.run()
        assert seen == ["app_op"]

    def test_ack_cost_is_group_size_minus_one_per_broadcast(self):
        scheduler, _, stacks = build_group(
            LamportTotalOrder, latency=UniformLatency(0.1, 2.0), seed=5
        )
        stacks["a"].total_send("op")
        scheduler.run()
        total_acks = sum(s.acks_sent for s in stacks.values())
        assert total_acks == 2  # b and c ack; a does not ack its own

    def test_single_member_group_self_delivers(self):
        scheduler, _, stacks = build_group(LamportTotalOrder, members=("solo",))
        label = stacks["solo"].total_send("op")
        scheduler.run()
        assert stacks["solo"].app_delivered == [label]

    def test_interleaved_sends_converge(self):
        scheduler, _, stacks = build_group(
            LamportTotalOrder, latency=UniformLatency(0.1, 3.0), seed=6
        )
        for round_ in range(3):
            for member in ("a", "b", "c"):
                scheduler.call_at(
                    round_ * 2.0 + 0.1, stacks[member].total_send, "op"
                )
        scheduler.run()
        orders = [s.app_delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == 9


class TestTotalOrderProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        sends=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=8),
    )
    def test_random_runs_agree(self, seed, sends):
        scheduler, _, stacks = build_group(
            LamportTotalOrder, latency=UniformLatency(0.1, 3.0), seed=seed
        )
        for sender in sends:
            stacks[sender].total_send("op")
        scheduler.run()
        orders = [s.app_delivered for s in stacks.values()]
        assert all(order == orders[0] for order in orders)
        assert len(orders[0]) == len(sends)
