"""Tests for the unordered and FIFO baselines."""

from __future__ import annotations

from repro.analysis.causal_check import sequences_respect_fifo
from repro.broadcast.fifo import FifoBroadcast
from repro.broadcast.unordered import UnorderedBroadcast
from repro.net.latency import PerPairLatency, ConstantLatency, UniformLatency
from tests.conftest import build_group


class TestUnordered:
    def test_everyone_delivers_everything(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast, seed=1)
        labels = {stacks[m].bcast("op") for m in ("a", "b", "c")}
        scheduler.run()
        for stack in stacks.values():
            assert set(stack.delivered) == labels

    def test_orders_may_differ_across_members(self):
        # Make a's messages slow to b but fast to c.
        latency = PerPairLatency(
            {("a", "b"): ConstantLatency(9.0)}, default=ConstantLatency(1.0)
        )
        scheduler, _, stacks = build_group(UnorderedBroadcast, latency=latency)
        stacks["a"].bcast("op")
        stacks["c"].bcast("op")
        scheduler.run()
        assert stacks["b"].delivered != stacks["c"].delivered

    def test_no_holdback_ever(self):
        scheduler, _, stacks = build_group(UnorderedBroadcast, seed=3)
        for _ in range(5):
            stacks["a"].bcast("op")
        scheduler.run()
        assert all(s.max_holdback <= 1 for s in stacks.values())


class TestFifo:
    def test_per_sender_order_restored_under_reordering(self):
        scheduler, _, stacks = build_group(
            FifoBroadcast, latency=UniformLatency(0.1, 5.0), seed=7
        )
        labels = [stacks["a"].bcast("op") for _ in range(10)]
        scheduler.run()
        for stack in stacks.values():
            assert stack.delivered == labels

    def test_fifo_property_checker_passes(self):
        scheduler, _, stacks = build_group(
            FifoBroadcast, latency=UniformLatency(0.1, 5.0), seed=11
        )
        for member in ("a", "b", "c"):
            for _ in range(5):
                stacks[member].bcast("op")
        scheduler.run()
        sequences = {m: s.delivered for m, s in stacks.items()}
        assert sequences_respect_fifo(sequences) == []

    def test_cross_sender_interleavings_can_differ(self):
        latency = PerPairLatency(
            {("a", "b"): ConstantLatency(9.0)}, default=ConstantLatency(1.0)
        )
        scheduler, _, stacks = build_group(FifoBroadcast, latency=latency)
        stacks["a"].bcast("op")
        stacks["c"].bcast("op")
        scheduler.run()
        assert stacks["b"].delivered != stacks["c"].delivered

    def test_all_messages_eventually_delivered(self):
        scheduler, _, stacks = build_group(
            FifoBroadcast, latency=UniformLatency(0.1, 3.0), seed=13
        )
        total = 0
        for member in ("a", "b", "c"):
            for _ in range(4):
                stacks[member].bcast("op")
                total += 1
        scheduler.run()
        for stack in stacks.values():
            assert len(stack.delivered) == total
            assert stack.holdback_size == 0
