"""Tests for the asyncio runtime."""

from __future__ import annotations

import asyncio

import pytest

from repro.broadcast.cbcast import CbcastBroadcast
from repro.broadcast.osend import OSendBroadcast
from repro.errors import ConfigurationError
from repro.group.membership import GroupMembership
from repro.net.latency import ConstantLatency
from repro.runtime.asyncio_transport import AsyncioNetwork


def run(coro):
    return asyncio.run(coro)


def make_group(net, protocol_cls, members=("a", "b", "c")):
    membership = GroupMembership(members)
    return {
        m: net.register(protocol_cls(m, membership)) for m in members
    }


class TestDelivery:
    def test_osend_dependencies_respected_in_real_time(self):
        async def scenario():
            net = AsyncioNetwork(latency=ConstantLatency(0.001))
            stacks = make_group(net, OSendBroadcast)
            m1 = stacks["a"].osend("first")
            stacks["b"].osend("second", occurs_after=m1)
            await net.quiesce(timeout=5)
            return stacks

        stacks = run(scenario())
        for stack in stacks.values():
            assert len(stack.delivered) == 2
            assert stack.delivered[0].sender == "a"

    def test_cbcast_runs_on_asyncio(self):
        async def scenario():
            net = AsyncioNetwork(latency=ConstantLatency(0.001))
            stacks = make_group(net, CbcastBroadcast)
            for member in ("a", "b", "c"):
                stacks[member].bcast("op")
            await net.quiesce(timeout=5)
            return stacks

        stacks = run(scenario())
        assert all(len(s.delivered) == 3 for s in stacks.values())

    def test_quiesce_waits_for_chained_sends(self):
        async def scenario():
            net = AsyncioNetwork(latency=ConstantLatency(0.001))
            stacks = make_group(net, OSendBroadcast)
            m1 = stacks["a"].osend("ping")
            replied = []

            def reply(env):
                if env.msg_id == m1 and not replied:
                    replied.append(stacks["b"].osend("pong", occurs_after=m1))

            stacks["b"].on_deliver(reply)
            await net.quiesce(timeout=5)
            return stacks

        stacks = run(scenario())
        assert all(len(s.delivered) == 2 for s in stacks.values())


class TestClock:
    def test_clock_advances(self):
        async def scenario():
            net = AsyncioNetwork()
            start = net.scheduler.now
            await asyncio.sleep(0.01)
            return net.scheduler.now - start

        assert run(scenario()) > 0

    def test_negative_delay_rejected(self):
        async def scenario():
            net = AsyncioNetwork()
            with pytest.raises(ConfigurationError):
                net.scheduler.call_in(-1.0, lambda: None)

        run(scenario())

    def test_duplicate_registration_rejected(self):
        async def scenario():
            net = AsyncioNetwork()
            membership = GroupMembership(["a"])
            net.register(OSendBroadcast("a", membership))
            with pytest.raises(ConfigurationError):
                net.register(OSendBroadcast("a", membership))

        run(scenario())
