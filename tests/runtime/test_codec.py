"""Tests for the JSON wire codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.lamport import Timestamp
from repro.clocks.vector import VectorClock
from repro.errors import ProtocolError
from repro.graph.predicates import OccursAfter
from repro.runtime.codec import decode_envelope, encode_envelope
from repro.types import Envelope, Message, MessageId


def envelope(metadata=None, payload=None, op="op") -> Envelope:
    return Envelope(Message(MessageId("a", 0), op, payload), metadata or {})


def roundtrip(env: Envelope) -> Envelope:
    return decode_envelope(encode_envelope(env))


class TestRoundTrip:
    def test_plain_envelope(self):
        env = envelope(payload={"key": "value", "n": 3})
        restored = roundtrip(env)
        assert restored.msg_id == env.msg_id
        assert restored.message.operation == "op"
        assert restored.message.payload == env.message.payload

    def test_occurs_after_metadata(self):
        predicate = OccursAfter.after([MessageId("b", 1), MessageId("c", 2)])
        restored = roundtrip(envelope({"occurs_after": predicate}))
        assert restored.metadata["occurs_after"] == predicate

    def test_vclock_metadata(self):
        clock = VectorClock({"a": 3, "b": 1})
        restored = roundtrip(envelope({"vclock": clock}))
        assert restored.metadata["vclock"] == clock

    def test_lamport_metadata(self):
        stamp = Timestamp(7, "x")
        restored = roundtrip(envelope({"lamport": stamp}))
        assert restored.metadata["lamport"] == stamp

    def test_epoch_and_combined_metadata(self):
        env = envelope({
            "epoch": 4,
            "occurs_after": OccursAfter.null(),
        })
        restored = roundtrip(env)
        assert restored.metadata["epoch"] == 4
        assert restored.metadata["occurs_after"].is_null

    def test_rst_matrix_metadata(self):
        matrix = {"a": {"a": 2, "b": 1}, "b": {"a": 1}}
        restored = roundtrip(envelope({"sent_matrix": matrix}))
        assert restored.metadata["sent_matrix"] == matrix

    def test_structured_payload_values(self):
        payload = {
            "label": MessageId("z", 9),
            "labels": frozenset({MessageId("z", 1), MessageId("z", 2)}),
            "pair": (1, "two"),
        }
        restored = roundtrip(envelope(payload=payload))
        assert restored.message.payload == payload

    @settings(max_examples=30, deadline=None)
    @given(
        sender=st.text(min_size=1, max_size=8),
        seqno=st.integers(0, 1_000_000),
        payload=st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(max_size=10),
            lambda children: st.lists(children, max_size=3)
            | st.dictionaries(st.text(max_size=5), children, max_size=3),
            max_leaves=8,
        ),
    )
    def test_arbitrary_json_payloads(self, sender, seqno, payload):
        env = Envelope(Message(MessageId(sender, seqno), "op", payload))
        restored = roundtrip(env)
        assert restored.message.payload == payload
        assert restored.msg_id == env.msg_id


class TestStrictness:
    def test_unknown_metadata_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_envelope(envelope({"mystery": object()}))

    def test_unencodable_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode_envelope(envelope(payload=object()))

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            decode_envelope(b"{not json")

    def test_wrong_version_rejected(self):
        with pytest.raises(ProtocolError):
            decode_envelope(b'{"v": 99}')

    def test_unknown_wire_metadata_rejected(self):
        with pytest.raises(ProtocolError):
            decode_envelope(
                b'{"v":1,"id":["a",0],"op":"x","payload":null,'
                b'"meta":{"surprise":1}}'
            )


class TestProtocolIntegration:
    def test_osend_traffic_survives_the_wire(self):
        """Encode every envelope a live OSend run produced, decode, and
        replay it into a fresh member: identical delivery."""
        from repro.broadcast.osend import OSendBroadcast
        from repro.group.membership import GroupMembership
        from repro.net.network import Network
        from repro.sim.rng import RngRegistry
        from repro.sim.scheduler import Scheduler
        from tests.conftest import build_group

        scheduler, _, stacks = build_group(OSendBroadcast, seed=2)
        m1 = stacks["a"].osend("one", {"n": 1})
        stacks["b"].osend("two", {"n": 2}, occurs_after=m1)
        scheduler.run()

        wire = [
            encode_envelope(env)
            for env in stacks["c"].delivered_envelopes
        ]
        # A fresh, isolated member replays the decoded traffic.
        fresh_sched = Scheduler()
        fresh_net = Network(fresh_sched, rng=RngRegistry(0))
        membership = GroupMembership(["x"])
        fresh = fresh_net.register(OSendBroadcast("x", membership))
        for data in reversed(wire):  # adversarial order
            fresh.on_receive("wire", decode_envelope(data))
        assert fresh.delivered == stacks["c"].delivered
