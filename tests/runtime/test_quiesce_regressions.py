"""Regression tests for the asyncio transport's quiescence machinery."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.runtime.asyncio_transport import AsyncioNetwork


def test_construction_outside_event_loop_raises():
    """No silent fallback loop: outside a coroutine the constructor must
    fail loudly instead of resolving a loop timers would never run on."""
    with pytest.raises(ConfigurationError):
        AsyncioNetwork()


def test_construction_with_explicit_loop():
    loop = asyncio.new_event_loop()
    try:
        net = AsyncioNetwork(loop=loop)
        assert net.scheduler.outstanding == 0
    finally:
        loop.close()


class _RacyClock:
    """Stub clock reproducing the lost-wakeup interleaving.

    The first ``outstanding`` read reports one callback still pending and
    simultaneously fires the completion wakeup (``idle.set()``) — exactly
    the window in which the final callback finishes between the caller's
    check and its wait.  With the old check-then-clear order the clear
    erased that wakeup and ``quiesce`` blocked on a quiesced network; the
    fixed clear-then-check order either sees zero outstanding or keeps
    the wakeup.
    """

    def __init__(self, idle: asyncio.Event) -> None:
        self._idle = idle
        self.reads = 0

    @property
    def outstanding(self) -> int:
        self.reads += 1
        if self.reads == 1:
            self._idle.set()
            return 1
        return 0


def test_quiesce_survives_wakeup_race():
    async def scenario() -> None:
        net = AsyncioNetwork()
        net.scheduler = _RacyClock(net._idle)
        # Must return promptly; the old ordering timed out here.
        await asyncio.wait_for(net.quiesce(timeout=5.0), timeout=1.0)
        assert net.scheduler.reads >= 2

    asyncio.run(scenario())


def test_quiesce_returns_when_nothing_outstanding():
    async def scenario() -> None:
        net = AsyncioNetwork()
        await asyncio.wait_for(net.quiesce(timeout=1.0), timeout=1.0)

    asyncio.run(scenario())
