"""Regression tests for the asyncio transport's quiescence machinery."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.runtime.asyncio_transport import AsyncioNetwork


def test_construction_outside_event_loop_raises():
    """No silent fallback loop: outside a coroutine the constructor must
    fail loudly instead of resolving a loop timers would never run on."""
    with pytest.raises(ConfigurationError):
        AsyncioNetwork()


def test_construction_with_explicit_loop():
    loop = asyncio.new_event_loop()
    try:
        net = AsyncioNetwork(loop=loop)
        assert net.scheduler.outstanding == 0
    finally:
        loop.close()


class _RacyClock:
    """Stub clock reproducing the lost-wakeup interleaving.

    The first ``outstanding`` read reports one callback still pending and
    simultaneously fires the completion wakeup (``idle.set()``) — exactly
    the window in which the final callback finishes between the caller's
    check and its wait.  With the old check-then-clear order the clear
    erased that wakeup and ``quiesce`` blocked on a quiesced network; the
    fixed clear-then-check order either sees zero outstanding or keeps
    the wakeup.
    """

    def __init__(self, idle: asyncio.Event) -> None:
        self._idle = idle
        self.reads = 0

    @property
    def outstanding(self) -> int:
        self.reads += 1
        if self.reads == 1:
            self._idle.set()
            return 1
        return 0


def test_quiesce_survives_wakeup_race():
    async def scenario() -> None:
        net = AsyncioNetwork()
        net.scheduler = _RacyClock(net._idle)
        # Must return promptly; the old ordering timed out here.
        await asyncio.wait_for(net.quiesce(timeout=5.0), timeout=1.0)
        assert net.scheduler.reads >= 2

    asyncio.run(scenario())


def test_quiesce_returns_when_nothing_outstanding():
    async def scenario() -> None:
        net = AsyncioNetwork()
        await asyncio.wait_for(net.quiesce(timeout=1.0), timeout=1.0)

    asyncio.run(scenario())


class TestMultiClusterHosting:
    """Several independent shard-like groups sharing one event loop."""

    @staticmethod
    def make_group(net, shard, members=("n0", "n1", "n2")):
        from repro.broadcast.osend import OSendBroadcast
        from repro.group.membership import GroupMembership
        from repro.net.latency import ConstantLatency  # noqa: F401 - idiom

        names = [f"s{shard}{m}" for m in members]
        membership = GroupMembership(names)
        return {
            name: net.register(OSendBroadcast(name, membership))
            for name in names
        }

    def test_two_networks_quiesce_together(self):
        from repro.net.latency import ConstantLatency
        from repro.runtime.asyncio_transport import quiesce_all

        async def scenario():
            nets = [
                AsyncioNetwork(latency=ConstantLatency(0.001))
                for _ in range(2)
            ]
            groups = [
                self.make_group(net, shard)
                for shard, net in enumerate(nets)
            ]
            # Concurrent per-shard traffic, including causal chains.
            for shard, group in enumerate(groups):
                stacks = list(group.values())
                first = stacks[0].osend(f"shard{shard}-a")
                stacks[1].osend(f"shard{shard}-b", occurs_after=first)
            await asyncio.wait_for(quiesce_all(nets), timeout=5)
            assert all(net.scheduler.outstanding == 0 for net in nets)
            return groups

        groups = asyncio.run(scenario())
        for group in groups:
            for stack in group.values():
                assert len(stack.delivered) == 2

    def test_cross_network_ping_pong_quiesces(self):
        """Delivery on one network triggers a send on another: the naive
        one-pass quiesce would return while the second network still had
        timers pending; quiesce_all must not."""
        from repro.net.latency import ConstantLatency
        from repro.runtime.asyncio_transport import quiesce_all

        async def scenario():
            net_a = AsyncioNetwork(latency=ConstantLatency(0.001))
            net_b = AsyncioNetwork(latency=ConstantLatency(0.001))
            group_a = self.make_group(net_a, 0)
            group_b = self.make_group(net_b, 1)
            b_first = next(iter(group_b.values()))

            def relay(env):
                if env.message.operation == "ping":
                    b_first.osend("pong")

            for stack in group_a.values():
                stack.on_deliver(relay)
            next(iter(group_a.values())).osend("ping")
            await asyncio.wait_for(quiesce_all([net_a, net_b]), timeout=5)
            return group_a, group_b

        group_a, group_b = asyncio.run(scenario())
        assert all(len(s.delivered) == 1 for s in group_a.values())
        # Every member of A relayed once: B delivered 3 pongs everywhere.
        assert all(len(s.delivered) == 3 for s in group_b.values())

    def test_quiesce_all_with_no_traffic(self):
        from repro.runtime.asyncio_transport import quiesce_all

        async def scenario():
            nets = [AsyncioNetwork() for _ in range(3)]
            await asyncio.wait_for(quiesce_all(nets), timeout=1)

        asyncio.run(scenario())

    def test_quiesce_all_is_importable_from_runtime(self):
        from repro.runtime import quiesce_all  # noqa: F401
