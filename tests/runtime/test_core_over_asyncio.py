"""The core layer (front-ends, replicas, stable points) over asyncio.

The §6.1 machinery only talks to the protocol interface, so it runs
unchanged on the real-time transport — demonstrating the paper's
layering: data-access protocols above a replaceable communication
substrate.
"""

from __future__ import annotations

import asyncio

from repro.analysis.convergence import stable_points_agree, states_agree
from repro.broadcast.osend import OSendBroadcast
from repro.core.commutativity import counter_spec
from repro.core.frontend import FrontEndManager
from repro.core.replica import Replica
from repro.core.state_machine import counter_machine
from repro.group.membership import GroupMembership
from repro.net.latency import ConstantLatency
from repro.runtime.asyncio_transport import AsyncioNetwork

MEMBERS = ("a", "b", "c")


def payload() -> dict:
    return {"item": "x", "amount": 1}


def build(net):
    membership = GroupMembership(MEMBERS)
    stacks = {
        m: net.register(OSendBroadcast(m, membership)) for m in MEMBERS
    }
    spec = counter_spec()
    replicas = {
        m: Replica(stack, counter_machine(), spec)
        for m, stack in stacks.items()
    }
    frontends = {m: FrontEndManager(stacks[m], spec) for m in MEMBERS}
    return stacks, replicas, frontends


class TestCoreOverAsyncio:
    def test_cycle_reaches_stable_agreement_in_real_time(self):
        async def scenario():
            net = AsyncioNetwork(latency=ConstantLatency(0.002))
            stacks, replicas, frontends = build(net)
            frontends["a"].request("inc", payload())
            frontends["b"].request("dec", payload())
            await net.quiesce(timeout=5)
            frontends["a"].request("inc", payload())
            await net.quiesce(timeout=5)
            frontends["a"].request("rd", payload())
            await net.quiesce(timeout=5)
            return replicas

        replicas = asyncio.run(scenario())
        states = {m: r.read_now() for m, r in replicas.items()}
        assert states_agree(states) == []
        assert stable_points_agree(replicas) == []
        assert all(r.stable_point_count == 1 for r in replicas.values())
        assert {r.stable_state_at(0) for r in replicas.values()} == {1}

    def test_deferred_reads_fire_in_real_time(self):
        async def scenario():
            net = AsyncioNetwork(latency=ConstantLatency(0.002))
            stacks, replicas, frontends = build(net)
            answers = []
            for member, replica in replicas.items():
                replica.read_at_next_stable_point(
                    lambda value, point, member=member: answers.append(
                        (member, value)
                    )
                )
            frontends["a"].request("inc", payload())
            await net.quiesce(timeout=5)
            frontends["a"].request("rd", payload())
            await net.quiesce(timeout=5)
            return answers

        answers = asyncio.run(scenario())
        assert len(answers) == 3
        assert {value for _, value in answers} == {1}
