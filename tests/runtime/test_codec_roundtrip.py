"""Property-style round-trip and forward-compatibility tests for the codec.

``tests/runtime/test_codec.py`` pins the strictness rules (unknown
*metadata* keys are rejected — a protocol stamp we cannot decode is a
correctness hazard).  This module pins the complementary rules: encoding
is a faithful involution over the value domain, and unknown *top-level
envelope fields* are ignored on decode so an older node can read frames
minted by a newer one.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.runtime.codec import (
    decode_envelope,
    decode_envelope_binary,
    decode_value,
    decode_value_binary,
    encode_envelope,
    encode_envelope_binary,
    encode_value,
    encode_value_binary,
)
from repro.types import Envelope, Message, MessageId

# JSON-representable scalars the wire may carry as payload leaves.
scalars = (
    st.none()
    | st.booleans()
    | st.integers(-(2**53), 2**53)
    | st.text(max_size=12)
)

# Structured values: scalars, labels, tuples, and (frozen)sets of labels,
# nested through lists and string-keyed dicts.
values = st.recursive(
    scalars
    | st.builds(MessageId, st.text(min_size=1, max_size=6), st.integers(0, 9999)),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3)
    | st.lists(children, max_size=3).map(tuple),
    max_leaves=10,
)

label_sets = st.frozensets(
    st.builds(MessageId, st.sampled_from("abc"), st.integers(0, 99)),
    max_size=4,
)


class TestValueRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(value=values)
    def test_value_round_trips_exactly(self, value):
        assert decode_value(encode_value(value)) == value

    @settings(max_examples=30, deadline=None)
    @given(labels=label_sets)
    def test_label_sets_round_trip(self, labels):
        restored = decode_value(encode_value(labels))
        assert restored == labels
        assert isinstance(restored, frozenset)

    @settings(max_examples=30, deadline=None)
    @given(value=values)
    def test_encoding_is_json_serializable(self, value):
        json.dumps(encode_value(value))  # must not raise

    def test_decode_value_wraps_malformed_structures(self):
        with pytest.raises(ProtocolError):
            decode_value({"__kind__": "no-such-kind", "data": 1})


class TestEnvelopeRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        sender=st.text(min_size=1, max_size=8),
        seqno=st.integers(0, 10**9),
        op=st.text(min_size=1, max_size=8),
        payload=values,
        epoch=st.none() | st.integers(0, 100),
    )
    def test_envelope_round_trips(self, sender, seqno, op, payload, epoch):
        metadata = {} if epoch is None else {"epoch": epoch}
        env = Envelope(Message(MessageId(sender, seqno), op, payload), metadata)
        restored = decode_envelope(encode_envelope(env))
        assert restored.msg_id == env.msg_id
        assert restored.message.operation == op
        assert restored.message.payload == payload
        assert restored.metadata == metadata


#: The binary codec also carries floats and arbitrary-precision ints
#: (tags of their own on the wire); fold them into the shared value
#: domain for the agreement properties.
binary_values = st.recursive(
    scalars
    | st.floats(allow_nan=False)
    | st.integers(-(2**80), 2**80)
    | st.builds(MessageId, st.text(min_size=1, max_size=6), st.integers(0, 9999)),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3)
    | st.lists(children, max_size=3).map(tuple),
    max_leaves=10,
)


class TestBinaryAgreesWithJson:
    """The two wire codecs are interchangeable over the value domain.

    The serving layer negotiates ``json`` or ``binary`` per connection
    and mixes both on one server, so the codecs must be *semantically
    identical*: any value either can carry round-trips through both to
    the same Python object.
    """

    @settings(max_examples=80, deadline=None)
    @given(value=binary_values)
    def test_binary_value_round_trips_exactly(self, value):
        assert decode_value_binary(encode_value_binary(value)) == value

    @settings(max_examples=80, deadline=None)
    @given(value=values)
    def test_codecs_agree_on_shared_domain(self, value):
        via_json = decode_value(encode_value(value))
        via_binary = decode_value_binary(encode_value_binary(value))
        assert via_json == via_binary
        assert type(via_json) is type(via_binary)

    @settings(max_examples=30, deadline=None)
    @given(labels=label_sets)
    def test_label_sets_agree(self, labels):
        restored = decode_value_binary(encode_value_binary(labels))
        assert restored == decode_value(encode_value(labels))
        assert isinstance(restored, frozenset)

    @settings(max_examples=40, deadline=None)
    @given(
        sender=st.text(min_size=1, max_size=8),
        seqno=st.integers(0, 10**9),
        op=st.text(min_size=1, max_size=8),
        payload=values,
        epoch=st.none() | st.integers(0, 100),
    )
    def test_envelopes_agree(self, sender, seqno, op, payload, epoch):
        metadata = {} if epoch is None else {"epoch": epoch}
        env = Envelope(Message(MessageId(sender, seqno), op, payload), metadata)
        via_json = decode_envelope(encode_envelope(env))
        via_binary = decode_envelope_binary(encode_envelope_binary(env))
        assert via_binary.msg_id == via_json.msg_id == env.msg_id
        assert via_binary.message.operation == via_json.message.operation
        assert via_binary.message.payload == via_json.message.payload
        assert via_binary.metadata == via_json.metadata == metadata

    def test_binary_truncation_is_a_protocol_error(self):
        blob = encode_value_binary({"k": [1, "two", MessageId("a", 3)]})
        for cut in range(len(blob)):
            with pytest.raises(ProtocolError):
                decode_value_binary(blob[:cut])

    def test_binary_rejects_unencodable_values(self):
        with pytest.raises(ProtocolError):
            encode_value_binary(object())


class TestForwardCompatibility:
    def wire_document(self) -> dict:
        env = Envelope(Message(MessageId("a", 0), "op", {"k": 1}))
        return json.loads(encode_envelope(env).decode("utf-8"))

    def test_unknown_top_level_field_ignored(self):
        document = self.wire_document()
        document["shiny_new_field"] = {"anything": [1, 2, 3]}
        restored = decode_envelope(json.dumps(document).encode("utf-8"))
        assert restored.msg_id == MessageId("a", 0)
        assert restored.message.payload == {"k": 1}

    @settings(max_examples=25, deadline=None)
    @given(
        extras=st.dictionaries(
            st.text(min_size=1, max_size=10).filter(
                lambda k: k not in {"v", "id", "op", "payload", "meta"}
            ),
            st.none() | st.integers() | st.text(max_size=5),
            max_size=4,
        )
    )
    def test_any_unknown_fields_ignored(self, extras):
        document = {**self.wire_document(), **extras}
        restored = decode_envelope(json.dumps(document).encode("utf-8"))
        assert restored.msg_id == MessageId("a", 0)

    def test_unknown_metadata_still_rejected(self):
        """Forward compatibility is top-level only: an undecodable
        protocol stamp must keep failing loudly."""
        document = self.wire_document()
        document["meta"] = {"mystery_stamp": 7}
        with pytest.raises(ProtocolError):
            decode_envelope(json.dumps(document).encode("utf-8"))
