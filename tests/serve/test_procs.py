"""Multi-process serving tests: routing, aggregation, worker crashes.

These spawn real worker processes (``multiprocessing`` spawn context),
so each test pays a fraction of a second of interpreter start-up per
worker — the scenarios are batched to keep that bounded.
"""

from __future__ import annotations

import asyncio
import json
from contextlib import asynccontextmanager

import pytest

from repro.errors import ProtocolError
from repro.serve import ServeClient, ServeError
from repro.serve.procs import (
    MultiProcServeServer,
    merge_tokens,
    partition_shards,
)
from repro.serve.wire import CODEC_BINARY, CODEC_JSON


@asynccontextmanager
async def server(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("members_per_shard", 3)
    kwargs.setdefault("seed", 9)
    kwargs.setdefault("procs", 2)
    srv = MultiProcServeServer(**kwargs)
    await srv.start()
    try:
        yield srv
    finally:
        await srv.shutdown()


@asynccontextmanager
async def client(srv, name="c", codec=CODEC_JSON):
    cli = ServeClient("127.0.0.1", srv.port, name, codec=codec)
    await cli.connect()
    try:
        yield cli
    finally:
        await cli.close()


def run(coro_fn):
    return asyncio.run(coro_fn())


def keys_per_shard(srv, count=2):
    """Concrete keys that land on each shard, via the real shard map."""
    found = {shard: [] for shard in range(srv.shards)}
    index = 0
    while any(len(keys) < count for keys in found.values()):
        key = f"key{index}"
        shard = srv.shard_map.shard_of(key)
        if len(found[shard]) < count:
            found[shard].append(key)
        index += 1
    return found


class TestPartition:
    def test_round_robin_split(self):
        assert partition_shards(4, 2) == [(0, 2), (1, 3)]

    def test_remainder_spread(self):
        assert partition_shards(5, 2) == [(0, 2, 4), (1, 3)]

    def test_more_procs_than_shards_collapses(self):
        assert partition_shards(2, 8) == [(0,), (1,)]


def token(session, frontier):
    return json.dumps({"v": 1, "session": session, "frontier": frontier})


class TestMergeTokens:
    """Regression: overlapping per-worker frontiers were blindly unioned.

    Workers host disjoint shards, so overlap is the exception — but when
    it happens (mid-rebalance races, subset clusters) a union fabricates
    a frontier no worker holds.  The shard's owning token must win, and
    the overlap must surface in stats instead of vanishing.
    """

    def test_disjoint_tokens_union_cleanly(self):
        merged = json.loads(merge_tokens([
            token("s", {"0": [["a", 1]]}),
            token("s", {"1": [["b", 2]]}),
        ]))
        assert merged["session"] == "s"
        assert merged["frontier"] == {"0": [["a", 1]], "1": [["b", 2]]}

    def test_overlap_resolves_to_the_owning_token(self):
        overlaps = []
        merged = json.loads(merge_tokens(
            [
                token("s", {"0": [["a", 1]]}),
                token("s", {"0": [["a", 3], ["b", 2]], "1": [["c", 1]]}),
            ],
            owners={"0": 1, "1": 1},
            on_overlap=overlaps.append,
        ))
        # Token 1 owns shard 0: its pairs win outright; token 0's stale
        # contribution must not leak into the merged frontier.
        assert merged["frontier"]["0"] == [["a", 3], ["b", 2]]
        assert merged["frontier"]["1"] == [["c", 1]]
        assert overlaps == ["0"]

    def test_overlap_without_owner_falls_back_to_union(self):
        overlaps = []
        merged = json.loads(merge_tokens(
            [
                token("s", {"0": [["a", 1]]}),
                token("s", {"0": [["a", 1], ["b", 2]]}),
            ],
            on_overlap=overlaps.append,
        ))
        assert merged["frontier"]["0"] == [["a", 1], ["b", 2]]
        assert overlaps == ["0"]

    def test_owner_that_contributed_nothing_defers_to_union(self):
        merged = json.loads(merge_tokens(
            [
                token("s", {"0": [["a", 1]]}),
                token("s", {"0": [["b", 2]]}),
            ],
            owners={"0": 7},  # points at a token position not present
        ))
        assert merged["frontier"]["0"] == [["a", 1], ["b", 2]]

    def test_no_overlap_means_no_callback(self):
        overlaps = []
        merge_tokens(
            [token("s", {"0": [["a", 1]]}), token("s", {"1": [["b", 1]]})],
            owners={"0": 0, "1": 1},
            on_overlap=overlaps.append,
        )
        assert overlaps == []


class TestEndToEnd:
    def test_puts_reads_and_stats_across_workers(self):
        async def scenario():
            async with server() as srv:
                assert srv.procs == 2
                per_shard = keys_per_shard(srv)
                async with client(srv) as cli:
                    for keys in per_shard.values():
                        for key in keys:
                            reply = await cli.put_wait(key, f"v-{key}")
                            assert reply["ok"] is True
                    # Read-your-writes through the front-end, for keys
                    # on both workers.
                    for keys in per_shard.values():
                        assert await cli.get(keys[0]) == f"v-{keys[0]}"
                    # A barrier read spans both workers' shards and
                    # merges their cuts.
                    read = await cli.read()
                    assert sorted(read["shards"]) == [0, 1]
                    for keys in per_shard.values():
                        for key in keys:
                            assert read["value"][key] == f"v-{key}"
                    # The stats verb aggregates worker snapshots.
                    stats = await cli.stats()
                    assert stats["procs"] == 2
                    assert stats["puts"] == sum(
                        len(keys) for keys in per_shard.values()
                    )
                # Worker-side audits come back with the final reports.
                assert srv.session_guarantee_violations() == []
                assert srv.aggregate_stats()["procs"] == 2

        run(scenario)

    def test_mixed_codecs_through_the_front_end(self):
        async def scenario():
            async with server() as srv:
                async with client(srv, "cb", codec=CODEC_BINARY) as cb:
                    async with client(srv, "cj", codec=CODEC_JSON) as cj:
                        assert cb.negotiated_codec == CODEC_BINARY
                        await cb.put_wait("b-key", 1)
                        await cj.put_wait("j-key", 2)
                        for cli in (cb, cj):
                            read = await cli.read()
                            assert read["value"]["b-key"] == 1
                            assert read["value"]["j-key"] == 2

        run(scenario)


class TestWorkerCrash:
    def test_crashed_worker_surfaces_clean_errors(self):
        async def scenario():
            async with server() as srv:
                per_shard = keys_per_shard(srv)
                async with client(srv) as cli:
                    for keys in per_shard.values():
                        await cli.put_wait(keys[0], "before-crash")
                    victim = srv.workers[0]
                    victim_shard = victim.shard_ids[0]
                    survivor_shard = next(
                        shard for shard in per_shard
                        if shard not in victim.shard_ids
                    )
                    victim.process.kill()
                    victim.process.join(5.0)
                    # Requests routed at the dead worker fail with a
                    # parseable error reply, not a hang or a dropped
                    # connection.
                    with pytest.raises((ServeError, ProtocolError)):
                        await asyncio.wait_for(
                            cli.put_wait(
                                per_shard[victim_shard][1], "after-crash"
                            ),
                            timeout=10.0,
                        )
                    # A fresh connection is told at hello time, cleanly
                    # (the front-end cannot fence a session across a
                    # missing shard worker, so it refuses the session
                    # rather than serving it partially).
                    late = ServeClient("127.0.0.1", srv.port, "late")
                    with pytest.raises((ServeError, ProtocolError)):
                        await asyncio.wait_for(late.connect(), timeout=10.0)
                    await late.close()
                    del survivor_shard  # routing spans both workers

        run(scenario)
