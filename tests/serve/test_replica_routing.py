"""Replica-routed gets: eligibility gating, spread, stickiness, failover.

The read-anywhere front end routes each ``get`` to any up member of the
key's shard whose settled prefix covers the session token's projection
onto that shard — round-robin over the eligible set, sticky hints
honoured while they stay eligible, falling back to the batch cycle
(``forward``) or a parseable ``retry`` frame (``retry``) when nobody
covers.  These tests drive the whole stack over localhost sockets.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.errors import ProtocolError
from repro.serve import ServeClient, ServeError, ServeServer
from repro.serve.server import READ_FALLBACKS, READ_POLICIES


@asynccontextmanager
async def server(**kwargs):
    kwargs.setdefault("shards", 1)
    kwargs.setdefault("members_per_shard", 3)
    kwargs.setdefault("seed", 5)
    srv = ServeServer(**kwargs)
    await srv.start()
    try:
        yield srv
    finally:
        await srv.shutdown()


@asynccontextmanager
async def client(srv: ServeServer, name: str = "c", token=None):
    cli = ServeClient("127.0.0.1", srv.port, name, token=token)
    await cli.connect()
    try:
        yield cli
    finally:
        await cli.close()


def run(coro_fn):
    return asyncio.run(coro_fn())


def replica_counters(srv) -> dict:
    return {
        key: value
        for key, value in srv.metrics.counters.items()
        if key.startswith("replica_reads_")
    }


class TestConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ProtocolError):
            ServeServer(read_policy="psychic")

    def test_unknown_fallback_rejected(self):
        with pytest.raises(ProtocolError):
            ServeServer(read_fallback="shrug")

    def test_knob_domains(self):
        assert "replica" in READ_POLICIES
        assert "coordinator" in READ_POLICIES
        assert set(READ_FALLBACKS) == {"forward", "retry"}


class TestDirectGets:
    def test_direct_get_names_its_replica(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                await cli.put_wait("k", "v")
                reply = await cli.get_submit("k")
                assert reply["value"] == "v"
                assert isinstance(reply["replica"], str)
                assert reply["shard"] in srv.cluster.groups
                assert srv.metrics.counters["gets_direct"] == 1
                assert srv.session_guarantee_violations() == []

        run(scenario)

    def test_round_robin_spreads_over_covering_replicas(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                await cli.put_wait("k", "v")
                served = set()
                for _ in range(6):
                    # Raw submits carry no sticky hint, so the cursor
                    # walks the whole eligible set.
                    reply = await cli.submit({"t": "get", "key": "k"})
                    assert reply["value"] == "v"
                    served.add(reply["replica"])
                assert len(served) == 3
                assert set(replica_counters(srv)) == {
                    f"replica_reads_{member}" for member in served
                }

        run(scenario)

    def test_sticky_hint_pins_the_replica(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                await cli.put_wait("k", "v")
                assert await cli.get("k") == "v"
                first = cli.replica_hints["k"]
                for _ in range(4):
                    assert await cli.get("k") == "v"
                    assert cli.replica_hints["k"] == first
                assert srv.metrics.counters["sticky_hits"] == 4

        run(scenario)

    def test_pipelined_put_then_get_keeps_issue_order(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                # The get is submitted while the put is still in flight:
                # the direct path must decline (ops pending in the batch
                # pipeline) and the cycle path must observe the put.
                put = cli.put("k", "pipelined")
                get = cli.get_submit("k")
                assert (await put)["ok"]
                assert (await get)["value"] == "pipelined"
                assert srv.metrics.counters.get("gets_direct", 0) == 0
                assert srv.metrics.counters["gets_cycle"] == 1
                assert srv.session_guarantee_violations() == []

        run(scenario)

    def test_coordinator_policy_serves_through_the_cycle(self):
        async def scenario():
            async with server(read_policy="coordinator") as srv:
                async with client(srv) as cli:
                    await cli.put_wait("k", "v")
                    assert await cli.get("k") == "v"
                    assert srv.metrics.counters.get("gets_direct", 0) == 0
                    assert srv.session_guarantee_violations() == []

        run(scenario)


def orphan_the_write(srv):
    """Leave no up replica covering the session's floor.

    The write's origin goes down (its outbox replay would self-recover
    it); the other two members restart amnesiac — up, in view, but with
    empty settled prefixes that cover nothing.
    """
    (group,) = srv.cluster.groups.values()
    origin, *others = group.members
    group.crash(origin)
    for member in others:
        group.crash(member)
        group.restart(member)
    return group, origin


class TestFallbacks:
    def test_forward_fallback_serves_from_session_state(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                await cli.put_wait("k", "v")
                orphan_the_write(srv)
                # No replica covers, so the get forwards to the batch
                # cycle, which folds the session's own causal past —
                # read-your-writes survives losing every covering copy.
                assert await cli.get("k") == "v"
                assert srv.metrics.counters["read_misses"] >= 1
                assert srv.session_guarantee_violations() == []

        run(scenario)

    def test_retry_fallback_emits_parseable_frames(self):
        async def scenario():
            async with server(read_fallback="retry") as srv:
                async with client(srv) as cli:
                    await cli.put_wait("k", "v")
                    orphan_the_write(srv)
                    reply = await cli.get_submit("k")
                    assert reply["t"] == "retry"
                    assert reply["key"] == "k"
                    assert reply["shard"] in srv.cluster.groups
                    assert reply["retry_after"] > 0

        run(scenario)

    def test_client_absorbs_retries_until_exhaustion(self):
        async def scenario():
            async with server(read_fallback="retry", retry_after=0.005) as srv:
                async with client(srv) as cli:
                    await cli.put_wait("k", "v")
                    group, origin = orphan_the_write(srv)
                    with pytest.raises(ServeError, match="no covering"):
                        await cli.get("k", retries=2)
                    assert cli.retries == 3
                    # Recovery: the origin comes back, replays its
                    # outbox, and anti-entropy refills the amnesiacs.
                    group.restart(origin)
                    srv._repair_round()
                    assert await cli.get("k") == "v"
                    assert srv.session_guarantee_violations() == []

        run(scenario)


class TestFailover:
    def test_killing_the_serving_replica_reroutes(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                await cli.put_wait("k", "v")
                assert await cli.get("k") == "v"
                target = cli.replica_hints["k"]
                (shard,) = srv.cluster.groups
                await cli.chaos("crash", shard, target)
                # The sticky hint now points at a corpse; the server
                # must ignore it and reroute to a covering survivor.
                assert await cli.get("k") == "v"
                assert cli.replica_hints["k"] != target
                assert srv.session_guarantee_violations() == []

        run(scenario)


class TestGetAudit:
    def test_clean_run_has_no_get_violations(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                await cli.put_wait("k", "v1")
                await cli.put_wait("k", "v2")
                assert await cli.get("k") == "v2"
                assert srv.get_violations() == []

        run(scenario)

    def test_stale_serve_is_flagged(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                await cli.put_wait("k", "v1")
                await cli.put_wait("k", "v2")
                first, _second = srv.cluster.issue_order
                (shard,) = srv.cluster.groups
                # Fabricate the bug the audit exists for: a get answered
                # with the older write after the session issued a newer
                # one.
                srv.history["c"].append(("get", ("k", shard, first, "s0n0")))
                violations = srv.get_violations()
                assert len(violations) == 1
                assert violations[0].guarantee == "get-freshness"
                assert violations[0].session == "c"

        run(scenario)
