"""Self-healing client + server-side degradation machinery.

Covers the recovery contract end to end: mid-pipeline disconnects with
token-carrying reconnect and opid replay (no put applied twice), load
shedding with parseable overload frames, deadline-aware admission via
the ``ttl`` field, and opid dedupe across connections.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.serve import ServeClient, ServeError, ServeServer
from repro.serve.client import ServeOverload
from repro.serve.faults import CLIENTWARD, ChaosProxy
from repro.serve.resilient import DEFAULT_OP_ATTEMPTS, GaveUp, ResilientClient
from repro.serve.wire import FRAME_OVERLOAD


@asynccontextmanager
async def server(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("members_per_shard", 3)
    kwargs.setdefault("seed", 5)
    srv = ServeServer(**kwargs)
    await srv.start()
    try:
        yield srv
    finally:
        await srv.shutdown()


@asynccontextmanager
async def proxied_server(**kwargs):
    async with server(**kwargs) as srv:
        proxy = ChaosProxy("127.0.0.1", srv.port)
        await proxy.start()
        try:
            yield srv, proxy
        finally:
            await proxy.stop()


def run(coro_fn):
    return asyncio.run(coro_fn())


class TestMidPipelineDisconnect:
    def test_token_reconnect_replays_without_double_apply(self):
        """The satellite scenario, verbatim: kill the connection with
        puts in flight, reconnect with the exported token, replay —
        session guarantees hold and no put is double-applied."""

        async def scenario():
            async with proxied_server() as (srv, proxy):
                cli = ServeClient("127.0.0.1", proxy.port, "pipe")
                await cli.connect()
                await cli.put_wait("base", "v0", opid="pipe#base")
                token = cli.token
                assert token is not None
                # Park the replies so the puts are genuinely in flight
                # (sent, applied server-side, unacknowledged) when the
                # connection dies mid-frame.
                proxy.stall_all(CLIENTWARD)
                futures = [
                    cli.put(f"k{i}", f"v{i}", opid=f"pipe#{i}")
                    for i in range(3)
                ]
                await asyncio.sleep(0.1)
                proxy.cut_all(mid_frame=True)
                proxy.resume_all()  # the stall must not outlive the cut
                for future in futures:
                    with pytest.raises(ServeError):
                        await asyncio.wait_for(future, 5)

                # Reconnect with the last token the client *saw* and
                # replay every ambiguous put with its original opid.
                cli2 = ServeClient(
                    "127.0.0.1", proxy.port, "pipe", token=token
                )
                await cli2.connect()
                for i in range(3):
                    reply = await cli2.put_wait(
                        f"k{i}", f"v{i}", opid=f"pipe#{i}"
                    )
                    assert reply["ok"]
                # Read-your-writes across the disconnect.
                for i in range(3):
                    assert await cli2.get(f"k{i}") == f"v{i}"
                await cli2.close()
                await cli.close()

                # At-most-once: 1 base put + 3 replayed puts = exactly
                # 4 writes in the server-side session history.
                writes = [
                    entry for entry in srv.history["pipe"]
                    if entry[0] == "write"
                ]
                assert len(writes) == 4
                assert srv.metrics.counters["puts_deduped"] >= 1
                assert not srv.session_guarantee_violations()

        run(scenario)

    def test_resilient_client_replays_through_repeated_cuts(self):
        async def scenario():
            async with proxied_server() as (srv, proxy):
                cli = ResilientClient(
                    "127.0.0.1", proxy.port, "chop", request_timeout=5.0
                )
                await cli.connect()
                for i in range(6):
                    await cli.put(f"k{i % 2}", f"v{i}")
                    if i % 2 == 1:
                        proxy.cut_all()
                        await asyncio.sleep(0.02)
                assert await cli.get("k1") == "v5"
                await cli.close()
                writes = [
                    entry for entry in srv.history["chop"]
                    if entry[0] == "write"
                ]
                assert len(writes) == 6  # every put applied exactly once
                assert cli.counters["reconnects"] >= 2
                assert not srv.session_guarantee_violations()

        run(scenario)


class TestOverload:
    def test_queue_full_shed_is_parseable_and_retryable(self):
        async def scenario():
            async with server(max_queue=1) as srv:
                cli = ServeClient("127.0.0.1", srv.port, "shed")
                await cli.connect()
                futures = [cli.put(f"k{i}", f"v{i}") for i in range(3)]
                replies = await asyncio.gather(*futures)
                overloads = [
                    r for r in replies if r.get("t") == FRAME_OVERLOAD
                ]
                assert overloads, "queue-full never shed"
                frame = overloads[0]
                assert frame["reason"] == "queue-full"
                assert frame["retry_after"] > 0
                assert frame["queue_depth"] >= 1
                assert srv.metrics.counters["sheds"] >= 1
                ok = [r for r in replies if r.get("ok")]
                assert ok, "the first put should have been admitted"
                reply = await cli.put_wait("k9", "v9")
                assert reply["ok"]
                await cli.close()

        run(scenario)

    def test_overload_raises_typed_error_on_waiting_verbs(self):
        async def scenario():
            # max_queue=0 sheds *everything*: the degenerate server that
            # only ever says "come back later".
            async with server(max_queue=0) as srv:
                cli = ServeClient("127.0.0.1", srv.port, "always")
                await cli.connect()
                with pytest.raises(ServeOverload) as excinfo:
                    await cli.put_wait("k", "v")
                assert excinfo.value.retry_after > 0
                await cli.close()

        run(scenario)

    def test_resilient_client_backs_off_then_gives_up(self):
        async def scenario():
            async with server(
                max_queue=0, overload_retry_after=0.01
            ) as srv:
                cli = ResilientClient(
                    "127.0.0.1", srv.port, "stampede", request_timeout=5.0
                )
                await cli.connect()
                with pytest.raises(GaveUp):
                    await asyncio.wait_for(cli.put("k", "v"), 30)
                assert cli.counters["overloads"] == DEFAULT_OP_ATTEMPTS
                assert cli.counters["backoffs"] >= DEFAULT_OP_ATTEMPTS
                await cli.close()

        run(scenario)


class TestDeadlineAdmission:
    def test_expired_ttl_is_shed_not_executed(self):
        async def scenario():
            async with server() as srv:
                cli = ServeClient(
                    "127.0.0.1", srv.port, "ttl", request_timeout=None
                )
                await cli.connect()
                reply = await cli.submit(
                    {"t": "put", "key": "k", "value": "v", "ttl": 1e-6}
                )
                assert reply["t"] == FRAME_OVERLOAD
                assert reply["reason"] == "deadline"
                assert srv.metrics.counters["deadline_drops"] >= 1
                # The shed put must not have reached the session log.
                writes = [
                    entry for entry in srv.history.get("ttl", [])
                    if entry[0] == "write"
                ]
                assert not writes
                await cli.close()

        run(scenario)

    def test_generous_ttl_is_admitted(self):
        async def scenario():
            async with server() as srv:
                cli = ServeClient(
                    "127.0.0.1", srv.port, "ttl2", request_timeout=30.0
                )
                await cli.connect()
                reply = await cli.put_wait("k", "v")
                assert reply["ok"]
                assert srv.metrics.counters.get("deadline_drops", 0) == 0
                await cli.close()

        run(scenario)


class TestOpidDedupe:
    def test_dedupe_across_reconnect_returns_original_label(self):
        async def scenario():
            async with server() as srv:
                cli = ServeClient("127.0.0.1", srv.port, "dd")
                await cli.connect()
                first = await cli.put_wait("k", "v", opid="dd#0")
                token = cli.token
                await cli.close()

                cli2 = ServeClient(
                    "127.0.0.1", srv.port, "dd", token=token
                )
                await cli2.connect()
                second = await cli2.put_wait("k", "v", opid="dd#0")
                assert second.get("deduped") is True
                assert second["label"] == first["label"]
                await cli2.close()

                writes = [
                    entry for entry in srv.history["dd"]
                    if entry[0] == "write"
                ]
                assert len(writes) == 1
                assert srv.metrics.counters["puts_deduped"] == 1

        run(scenario)

    def test_distinct_opids_are_distinct_puts(self):
        async def scenario():
            async with server() as srv:
                cli = ServeClient("127.0.0.1", srv.port, "dd2")
                await cli.connect()
                await cli.put_wait("k", "v1", opid="dd2#0")
                await cli.put_wait("k", "v2", opid="dd2#1")
                assert await cli.get("k") == "v2"
                await cli.close()
                writes = [
                    entry for entry in srv.history["dd2"]
                    if entry[0] == "write"
                ]
                assert len(writes) == 2
                assert srv.metrics.counters["puts_deduped"] == 0

        run(scenario)
