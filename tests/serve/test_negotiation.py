"""Codec negotiation tests: hello handshake, rejects, compatibility.

The negotiation contract (see :mod:`repro.serve.wire`): every
connection starts in JSON, the ``hello`` names a codec, the hello reply
confirms it *in the old codec*, and only frames after the reply speak
the negotiated one.  That makes JSON-only PR-5 clients — which never
send a ``codec`` field — indistinguishable from clients that explicitly
ask for JSON, and it makes an unknown codec a clean, parseable error
instead of a framing desync.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.serve import ServeClient, ServeError, ServeServer, reconnect
from repro.serve.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    SUPPORTED_CODECS,
    read_frame,
    write_frame,
)


@asynccontextmanager
async def server(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("members_per_shard", 3)
    kwargs.setdefault("seed", 7)
    srv = ServeServer(**kwargs)
    await srv.start()
    try:
        yield srv
    finally:
        await srv.shutdown()


@asynccontextmanager
async def client(srv, name="c", token=None, codec=CODEC_JSON):
    cli = ServeClient("127.0.0.1", srv.port, name, token=token, codec=codec)
    await cli.connect()
    try:
        yield cli
    finally:
        await cli.close()


def run(coro_fn):
    return asyncio.run(coro_fn())


class TestNegotiation:
    def test_binary_negotiation_switches_after_hello(self):
        async def scenario():
            async with server() as srv:
                async with client(srv, codec=CODEC_BINARY) as cli:
                    assert cli.hello_reply["codec"] == CODEC_BINARY
                    assert cli.negotiated_codec == CODEC_BINARY
                    reply = await cli.put_wait("k", ("tuple", 1))
                    assert reply["ok"] is True
                    read = await cli.read()
                    assert read["value"]["k"] == ("tuple", 1)
                    assert srv.metrics.counters["codec_binary"] == 1

        run(scenario)

    def test_hello_advertises_supported_codecs(self):
        async def scenario():
            async with server() as srv:
                async with client(srv) as cli:
                    assert cli.hello_reply["codecs"] == list(SUPPORTED_CODECS)
                    assert cli.hello_reply["codec"] == CODEC_JSON

        run(scenario)

    def test_unknown_codec_rejected_cleanly(self):
        async def scenario():
            async with server() as srv:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", srv.port
                )
                write_frame(writer, {
                    "t": "hello", "rid": 1, "session": "s",
                    "codec": "msgpack",
                })
                reply = await read_frame(reader)
                assert reply["t"] == "error"
                assert "unknown codec" in reply["error"]
                assert reply["codecs"] == list(SUPPORTED_CODECS)
                # The connection stays up, still in JSON: a corrected
                # hello on the same socket succeeds.
                write_frame(writer, {
                    "t": "hello", "rid": 2, "session": "s",
                    "codec": "json",
                })
                reply = await read_frame(reader)
                assert reply["ok"] is True
                writer.close()

        run(scenario)

    def test_pr5_client_without_codec_field_stays_json(self):
        """A PR-5 era client: raw JSON frames, no codec field at all."""

        async def scenario():
            async with server() as srv:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", srv.port
                )
                write_frame(writer, {"t": "hello", "rid": 1, "session": "old"})
                hello = await read_frame(reader)
                assert hello["ok"] is True
                assert hello["codec"] == CODEC_JSON
                write_frame(writer, {
                    "t": "put", "rid": 2, "key": "legacy", "value": 41,
                })
                reply = await read_frame(reader)
                assert reply["ok"] is True and reply["rid"] == 2
                write_frame(writer, {"t": "read", "rid": 3})
                reply = await read_frame(reader)
                assert reply["value"]["legacy"] == 41
                writer.close()

        run(scenario)


class TestMixedCodecs:
    def test_json_and_binary_clients_share_a_server(self):
        async def scenario():
            async with server() as srv:
                async with client(srv, "cj", codec=CODEC_JSON) as cj:
                    async with client(srv, "cb", codec=CODEC_BINARY) as cb:
                        await cj.put_wait("from-json", 1)
                        await cb.put_wait("from-binary", 2)
                        # Each sees the other's write at a stable point.
                        for cli in (cj, cb):
                            read = await cli.read()
                            assert read["value"]["from-json"] == 1
                            assert read["value"]["from-binary"] == 2
                assert srv.metrics.counters["codec_json"] == 1
                assert srv.metrics.counters["codec_binary"] == 1

        run(scenario)


class TestReconnect:
    def test_reconnect_keeps_token_and_codec(self):
        async def scenario():
            async with server() as srv:
                cli = ServeClient(
                    "127.0.0.1", srv.port, "r", codec=CODEC_BINARY
                )
                await cli.connect()
                try:
                    await cli.put_wait("mine", "before-reconnect")
                    cli = await reconnect(cli)
                    assert cli.negotiated_codec == CODEC_BINARY
                    assert cli.token is not None
                    # Read-your-writes survives the reconnect: the new
                    # connection presented the old session's token.
                    assert await cli.get("mine") == "before-reconnect"
                finally:
                    await cli.close()

        run(scenario)
