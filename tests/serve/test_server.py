"""End-to-end serving-layer tests over real localhost sockets."""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.serve import ServeClient, ServeError, ServeServer, reconnect
from repro.serve.wire import read_frame, write_frame


@asynccontextmanager
async def server(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("members_per_shard", 3)
    kwargs.setdefault("seed", 5)
    srv = ServeServer(**kwargs)
    await srv.start()
    try:
        yield srv
    finally:
        await srv.shutdown()


@asynccontextmanager
async def client(srv: ServeServer, name: str = "c", token=None):
    cli = ServeClient("127.0.0.1", srv.port, name, token=token)
    await cli.connect()
    try:
        yield cli
    finally:
        await cli.close()


def run(coro_fn):
    return asyncio.run(coro_fn())


class TestBasics:
    def test_hello_reply_shape(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                reply = cli.hello_reply
                assert reply["wire_version"] == 1
                assert reply["shards"] == 2
                assert reply["token_labels_dropped"] == 0
                assert isinstance(reply["token"], str)

        run(scenario)

    def test_put_returns_label_and_token(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                reply = await cli.put_wait("k", "v")
                assert reply["ok"] and reply["label"] is not None
                assert cli.token == reply["token"]

        run(scenario)

    def test_get_is_read_your_writes(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                await cli.put_wait("k", "v1")
                assert await cli.get("k") == "v1"
                assert await cli.get("missing") is None

        run(scenario)

    def test_unhashable_value_errors_without_poisoning_batch(self):
        """The kv fold needs hashable values; one bad op must not take
        down the ops pipelined alongside it."""

        async def scenario():
            async with server() as srv, client(srv) as cli:
                good = cli.put("good", "v")
                bad = cli.put("bad", {"nested": "dict"})
                assert (await good)["ok"]
                with pytest.raises(ServeError, match="hashable"):
                    await bad
                assert await cli.get("good") == "v"

        run(scenario)

    def test_barrier_read_spans_shards(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                for i in range(8):  # enough keys to hit both shards
                    await cli.put_wait(f"k{i}", i)
                snapshot = await cli.read()
                assert snapshot["shards"] == [0, 1]
                assert all(
                    snapshot["value"][f"k{i}"] == i for i in range(8)
                )
                assert srv.session_guarantee_violations() == []

        run(scenario)

    def test_pipelined_puts_batch_into_few_cycles(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                futures = [cli.put(f"k{i}", i) for i in range(20)]
                replies = await asyncio.gather(*futures)
                assert all(r["ok"] for r in replies)
                counters = srv.metrics.counters
                assert counters["puts"] == 20
                assert counters["batched_ops"] == 20
                # Pipelined submissions coalesce: far fewer drain cycles
                # than operations.
                assert counters["batches"] < 20

        run(scenario)

    def test_unknown_request_type_errors(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                with pytest.raises(ServeError, match="unknown request"):
                    await cli._request({"t": "teleport"})

        run(scenario)

    def test_read_with_unknown_shard_errors(self):
        async def scenario():
            async with server() as srv, client(srv) as cli:
                await cli.put_wait("k", 1)
                with pytest.raises(ServeError, match="unknown shard"):
                    await cli.read(shards=[0, 9])

        run(scenario)

    def test_request_before_hello_rejected(self):
        async def scenario():
            async with server() as srv:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", srv.port
                )
                write_frame(writer, {"t": "get", "key": "k", "rid": 0})
                await writer.drain()
                reply = await read_frame(reader)
                assert reply["t"] == "error"
                assert "hello required" in reply["error"]
                writer.close()

        run(scenario)


class TestSessionTokens:
    def test_reconnect_preserves_read_your_writes(self):
        async def scenario():
            async with server() as srv:
                cli = ServeClient("127.0.0.1", srv.port, "alice")
                await cli.connect()
                await cli.put_wait("k", "mine")
                cli = await reconnect(cli)
                assert await cli.get("k") == "mine"
                assert cli.hello_reply["token_labels_dropped"] == 0
                await cli.close()
                assert srv.session_guarantee_violations() == []

        run(scenario)

    def test_token_carries_frontier_to_a_fresh_session_name(self):
        """The token, not the server-side session entry, is the state."""

        async def scenario():
            async with server() as srv:
                async with client(srv, "writer") as writer:
                    await writer.put_wait("k", "from-writer")
                    token = await writer.fetch_token()
                async with client(srv, "heir", token=token) as heir:
                    assert await heir.get("k") == "from-writer"

        run(scenario)

    def test_malformed_token_is_an_error_reply(self):
        async def scenario():
            async with server() as srv:
                cli = ServeClient(
                    "127.0.0.1", srv.port, "x", token="{not json"
                )
                with pytest.raises(ServeError):
                    await cli.connect()
                await cli.close()

        run(scenario)


class TestAdmissionControl:
    def test_small_cap_stalls_but_completes(self):
        async def scenario():
            async with server(max_inflight=2) as srv:
                async with client(srv) as cli:
                    futures = [cli.put(f"k{i}", i) for i in range(20)]
                    replies = await asyncio.gather(*futures)
                    assert all(r["ok"] for r in replies)
                    assert srv.metrics.counters["admission_waits"] > 0
                    assert srv.metrics.counters["puts"] == 20

        run(scenario)


class TestChaosOverTheWire:
    def test_crash_mid_run_keeps_guarantees(self):
        async def scenario():
            async with server() as srv:
                async with client(srv) as cli:
                    for i in range(6):
                        await cli.put_wait(f"k{i}", i)
                    crashed = await cli.chaos("crash", shard=0)
                    assert crashed["member"].startswith("s0")
                    for i in range(6, 12):
                        await cli.put_wait(f"k{i}", i)
                    snapshot = await cli.read()
                    assert all(
                        snapshot["value"][f"k{i}"] == i for i in range(12)
                    )
                assert srv.session_guarantee_violations() == []
            # Graceful shutdown healed the crash before the audit.
            assert srv.heal_violations == []
            assert srv.check_invariants() == []

        run(scenario)

    def test_refuses_to_crash_last_member(self):
        async def scenario():
            async with server() as srv:
                async with client(srv) as cli:
                    first = await cli.chaos("crash", shard=1)
                    second = await cli.chaos("crash", shard=1)
                    assert first["member"] != second["member"]
                    with pytest.raises(ServeError, match="last member"):
                        await cli.chaos("crash", shard=1)

        run(scenario)

    def test_restart_rejoins_traffic(self):
        async def scenario():
            async with server() as srv:
                async with client(srv) as cli:
                    crashed = await cli.chaos("crash", shard=0)
                    await cli.put_wait("k", "while-down")
                    await cli.chaos(
                        "restart", shard=0, member=crashed["member"]
                    )
                    await cli.put_wait("k2", "after-restart")
                    assert await cli.get("k") == "while-down"
                assert srv.session_guarantee_violations() == []

        run(scenario)


class TestGracefulDrain:
    def test_shutdown_says_bye_and_audits_clean(self):
        async def scenario():
            srv = ServeServer(shards=2, members_per_shard=3, seed=5)
            await srv.start()
            cli = ServeClient("127.0.0.1", srv.port, "s")
            await cli.connect()
            await cli.put_wait("k", 1)
            await srv.shutdown()
            # The recv loop saw the server-initiated bye frame.
            for _ in range(50):
                if cli.server_said_bye:
                    break
                await asyncio.sleep(0.01)
            assert cli.server_said_bye
            assert srv.heal_violations == []
            assert srv.check_invariants() == []
            with pytest.raises(ServeError):
                await cli.put_wait("k", 2)
            await cli.close()

        run(scenario)

    def test_requests_during_drain_are_rejected(self):
        async def scenario():
            async with server() as srv:
                async with client(srv) as cli:
                    await cli.put_wait("k", 1)
                    srv._draining = True
                    with pytest.raises(ServeError, match="draining"):
                        await cli.put_wait("k", 2)
                    srv._draining = False

        run(scenario)
