"""Framing tests for the serve-layer wire protocol."""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.serve.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    MAX_FRAME,
    decode_frame,
    encode_frame,
    encode_frame_body,
    peek_frame_fields,
    read_frame,
    write_frame,
)
from repro.types import MessageId


def reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def read_all(data: bytes):
    async def scenario():
        reader = reader_with(data)
        frames = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(scenario())


class TestRoundTrip:
    def test_simple_document(self):
        blob = encode_frame({"t": "put", "key": "k", "value": 3})
        assert decode_frame(blob[4:]) == {"t": "put", "key": "k", "value": 3}

    def test_length_prefix_is_big_endian_body_length(self):
        blob = encode_frame({"t": "bye"})
        assert int.from_bytes(blob[:4], "big") == len(blob) - 4

    def test_structured_values_survive(self):
        label = MessageId("s0n1", 7)
        blob = encode_frame({"t": "r", "label": label,
                             "labels": frozenset({label})})
        doc = decode_frame(blob[4:])
        assert doc["label"] == label
        assert doc["labels"] == frozenset({label})

    def test_stream_of_frames(self):
        blob = encode_frame({"n": 1}) + encode_frame({"n": 2})
        assert read_all(blob) == [{"n": 1}, {"n": 2}]

    def test_write_frame_feeds_read_frame(self):
        async def scenario():
            reader = asyncio.StreamReader()

            class _Writer:
                def write(self, data):
                    reader.feed_data(data)

            write_frame(_Writer(), {"t": "hello", "session": "s"})
            reader.feed_eof()
            return await read_frame(reader)

        assert asyncio.run(scenario()) == {"t": "hello", "session": "s"}


class TestEdges:
    def test_clean_eof_returns_none(self):
        assert read_all(b"") == []

    def test_mid_prefix_eof_raises(self):
        with pytest.raises(ProtocolError):
            read_all(b"\x00\x00")

    def test_mid_body_eof_raises(self):
        blob = encode_frame({"t": "x"})
        with pytest.raises(ProtocolError):
            read_all(blob[:-1])

    def test_oversized_outbound_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_oversized_inbound_rejected_before_read(self):
        huge = (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            read_all(huge + b"x")

    def test_non_object_body_rejected(self):
        import json

        body = json.dumps([1, 2]).encode()
        with pytest.raises(ProtocolError):
            read_all(len(body).to_bytes(4, "big") + body)

    def test_garbage_body_rejected(self):
        body = b"{not json"
        with pytest.raises(ProtocolError):
            read_all(len(body).to_bytes(4, "big") + body)

    def test_unknown_fields_pass_through(self):
        # Forward compatibility: framing does not police the schema.
        blob = encode_frame({"t": "put", "future_field": [1, 2]})
        assert decode_frame(blob[4:])["future_field"] == [1, 2]


# Frame documents: string keys (request/reply fields) over the value
# domain both wire codecs carry.
frame_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**53), 2**53)
    | st.text(max_size=8)
    | st.builds(MessageId, st.text(min_size=1, max_size=4), st.integers(0, 999)),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=5), children, max_size=3)
    | st.lists(children, max_size=3).map(tuple),
    max_leaves=8,
)
frame_documents = st.dictionaries(
    st.text(min_size=1, max_size=8), frame_values, max_size=6
)


class TestCodecAgreement:
    """JSON and binary frame bodies carry the same document."""

    @settings(max_examples=60, deadline=None)
    @given(document=frame_documents)
    def test_frame_bodies_agree(self, document):
        via_json = decode_frame(
            encode_frame_body(document, CODEC_JSON), CODEC_JSON
        )
        via_binary = decode_frame(
            encode_frame_body(document, CODEC_BINARY), CODEC_BINARY
        )
        assert via_json == via_binary == document

    @settings(max_examples=60, deadline=None)
    @given(
        document=frame_documents,
        wanted=st.frozensets(st.text(min_size=1, max_size=8), max_size=4),
    )
    def test_peek_agrees_with_full_decode(self, document, wanted):
        """``peek_frame_fields`` (which byte-skips unwanted values, so
        this exercises ``_skip_value`` over every tag) returns exactly
        the full decode restricted to the wanted keys."""
        body = encode_frame_body(document, CODEC_BINARY)
        peeked = peek_frame_fields(body, CODEC_BINARY, tuple(wanted))
        full = decode_frame(body, CODEC_BINARY)
        assert peeked == {
            key: value for key, value in full.items() if key in wanted
        }

    def test_peek_json_is_a_full_decode(self):
        body = encode_frame_body({"t": "put", "key": "k", "value": 1})
        peeked = peek_frame_fields(body, CODEC_JSON, ("t",))
        assert peeked == {"t": "put", "key": "k", "value": 1}

    @settings(max_examples=40, deadline=None)
    @given(document=frame_documents)
    def test_peek_survives_truncation_with_an_error(self, document):
        body = encode_frame_body(
            {"pad": list(range(4)), **document}, CODEC_BINARY
        )
        for cut in (1, 2, len(body) // 2, len(body) - 1):
            with pytest.raises(ProtocolError):
                peek_frame_fields(body[:cut], CODEC_BINARY, ("no-such",))

    def test_binary_magic_enforced(self):
        body = encode_frame_body({"t": "put"}, CODEC_JSON)
        with pytest.raises(ProtocolError):
            decode_frame(body, CODEC_BINARY)
        with pytest.raises(ProtocolError):
            peek_frame_fields(body, CODEC_BINARY, ("t",))
