"""Framing tests for the serve-layer wire protocol."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.serve.wire import (
    MAX_FRAME,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.types import MessageId


def reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def read_all(data: bytes):
    async def scenario():
        reader = reader_with(data)
        frames = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(scenario())


class TestRoundTrip:
    def test_simple_document(self):
        blob = encode_frame({"t": "put", "key": "k", "value": 3})
        assert decode_frame(blob[4:]) == {"t": "put", "key": "k", "value": 3}

    def test_length_prefix_is_big_endian_body_length(self):
        blob = encode_frame({"t": "bye"})
        assert int.from_bytes(blob[:4], "big") == len(blob) - 4

    def test_structured_values_survive(self):
        label = MessageId("s0n1", 7)
        blob = encode_frame({"t": "r", "label": label,
                             "labels": frozenset({label})})
        doc = decode_frame(blob[4:])
        assert doc["label"] == label
        assert doc["labels"] == frozenset({label})

    def test_stream_of_frames(self):
        blob = encode_frame({"n": 1}) + encode_frame({"n": 2})
        assert read_all(blob) == [{"n": 1}, {"n": 2}]

    def test_write_frame_feeds_read_frame(self):
        async def scenario():
            reader = asyncio.StreamReader()

            class _Writer:
                def write(self, data):
                    reader.feed_data(data)

            write_frame(_Writer(), {"t": "hello", "session": "s"})
            reader.feed_eof()
            return await read_frame(reader)

        assert asyncio.run(scenario()) == {"t": "hello", "session": "s"}


class TestEdges:
    def test_clean_eof_returns_none(self):
        assert read_all(b"") == []

    def test_mid_prefix_eof_raises(self):
        with pytest.raises(ProtocolError):
            read_all(b"\x00\x00")

    def test_mid_body_eof_raises(self):
        blob = encode_frame({"t": "x"})
        with pytest.raises(ProtocolError):
            read_all(blob[:-1])

    def test_oversized_outbound_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_oversized_inbound_rejected_before_read(self):
        huge = (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            read_all(huge + b"x")

    def test_non_object_body_rejected(self):
        import json

        body = json.dumps([1, 2]).encode()
        with pytest.raises(ProtocolError):
            read_all(len(body).to_bytes(4, "big") + body)

    def test_garbage_body_rejected(self):
        body = b"{not json"
        with pytest.raises(ProtocolError):
            read_all(len(body).to_bytes(4, "big") + body)

    def test_unknown_fields_pass_through(self):
        # Forward compatibility: framing does not police the schema.
        blob = encode_frame({"t": "put", "future_field": [1, 2]})
        assert decode_frame(blob[4:])["future_field"] == [1, 2]
