"""Load-generator tests (small shapes; the big runs live in benchmarks)."""

from __future__ import annotations

import asyncio

from repro.serve import LoadReport, ServeServer, run_load


def run_shape(**kwargs):
    async def scenario():
        srv = ServeServer(shards=2, members_per_shard=3, seed=9)
        await srv.start()
        try:
            report = await run_load("127.0.0.1", srv.port, **kwargs)
        finally:
            await srv.shutdown()
        return srv, report

    return asyncio.run(scenario())


class TestClosedLoop:
    def test_all_ops_complete_without_errors(self):
        srv, report = run_shape(clients=4, ops_per_client=12, pipeline=4)
        assert report.ops == 4 * 12
        assert report.errors == 0
        assert report.elapsed > 0
        assert len(report.latencies_ms) == report.ops

    def test_reads_happen_at_the_requested_cadence(self):
        srv, report = run_shape(
            clients=2, ops_per_client=12, pipeline=3, read_every=4
        )
        assert report.reads == 2 * 3  # every 4th of 12 ops, per client
        assert report.errors == 0

    def test_reconnects_present_tokens(self):
        srv, report = run_shape(
            clients=3, ops_per_client=10, pipeline=2, reconnect_every=5
        )
        assert report.reconnects == 3 * 2
        assert srv.metrics.counters["tokens_imported"] == report.reconnects
        assert srv.metrics.counters["token_labels_dropped"] == 0
        assert report.errors == 0

    def test_load_history_passes_session_guarantees(self):
        srv, report = run_shape(
            clients=4, ops_per_client=10, pipeline=4,
            read_every=3, reconnect_every=7,
        )
        assert report.errors == 0
        assert srv.session_guarantee_violations() == []

    def test_server_stats_folded_into_report(self):
        srv, report = run_shape(
            clients=2, ops_per_client=6, pipeline=2, fetch_stats=True
        )
        assert report.server_stats is not None
        assert report.server_stats["puts"] >= 8
        assert "latency" in report.server_stats


class TestOpenLoop:
    def test_rate_limited_run_completes(self):
        srv, report = run_shape(
            clients=2, ops_per_client=6, pipeline=2, rate=200.0
        )
        assert report.ops == 12
        assert report.errors == 0


class TestReport:
    def test_quantiles_and_summary(self):
        report = LoadReport(
            clients=1, pipeline=1, ops=4, reads=1, errors=0,
            reconnects=0, elapsed=2.0,
            latencies_ms=[1.0, 2.0, 3.0, 4.0],
        )
        assert report.ops_per_sec == 2.0
        assert report.p50_ms == 3.0  # nearest-rank on an even-size sample
        assert report.p99_ms == 4.0
        text = report.summary()
        assert "2 ops/s" in text and "p99=4.00ms" in text

    def test_empty_report_summary(self):
        report = LoadReport(
            clients=0, pipeline=1, ops=0, reads=0, errors=0,
            reconnects=0, elapsed=0.0,
        )
        assert report.p50_ms is None
        assert "p50=-" in report.summary()
