"""Unit tests for the serve-layer metrics."""

from __future__ import annotations

from repro.serve.metrics import RESERVOIR, ServeMetrics, percentile


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_median_of_odd_run(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_p99_is_near_max(self):
        samples = list(map(float, range(100)))
        assert percentile(samples, 0.99) == 98.0
        assert percentile(samples, 1.0) == 99.0

    def test_monotone_in_q(self):
        samples = [5.0, 1.0, 9.0, 3.0, 7.0]
        quantiles = [percentile(samples, q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)

    def test_order_independent(self):
        assert percentile([1.0, 2.0, 3.0], 0.99) == percentile(
            [3.0, 1.0, 2.0], 0.99
        )


class TestServeMetrics:
    def test_bump_known_and_ad_hoc_counters(self):
        metrics = ServeMetrics()
        metrics.bump("puts")
        metrics.bump("puts", 2)
        metrics.bump("shard0_batch_puts", 5)
        assert metrics.counters["puts"] == 3
        assert metrics.counters["shard0_batch_puts"] == 5

    def test_batch_recording_feeds_snapshot(self):
        metrics = ServeMetrics()
        metrics.record_batch(4)
        metrics.record_batch(8)
        snap = metrics.snapshot()
        assert snap["batches"] == 2
        assert snap["batched_ops"] == 12
        assert snap["batch_mean"] == 6.0
        assert snap["batch_max"] == 8

    def test_latency_quantiles_per_kind(self):
        metrics = ServeMetrics()
        for ms in (1.0, 2.0, 3.0):
            metrics.record_latency("put", ms)
        metrics.record_latency("read", 10.0)
        put = metrics.latency_quantiles("put")
        assert put["p50_ms"] == 2.0 and put["samples"] == 3
        assert metrics.latency_quantiles("read")["max_ms"] == 10.0
        assert metrics.latency_quantiles("nothing")["samples"] == 0

    def test_reservoir_keeps_newest(self):
        metrics = ServeMetrics()
        for i in range(RESERVOIR + 100):
            metrics.record_latency("op", float(i))
        quantiles = metrics.latency_quantiles("op")
        assert quantiles["samples"] == RESERVOIR
        # The oldest 100 samples were evicted.
        assert quantiles["p50_ms"] > 100.0

    def test_snapshot_is_json_compatible(self):
        import json

        metrics = ServeMetrics()
        metrics.bump("ops")
        metrics.record_latency("op", 1.5)
        metrics.record_batch(1)
        json.dumps(metrics.snapshot())  # must not raise

    def test_render_mentions_counters_and_latency(self):
        metrics = ServeMetrics()
        metrics.bump("ops", 9)
        metrics.record_latency("op", 2.5)
        metrics.record_batch(3)
        text = metrics.render()
        assert "ops" in text and "9" in text
        assert "op latency" in text and "batch size" in text

    def test_empty_render_has_no_latency_lines(self):
        text = ServeMetrics().render()
        assert "latency" not in text
