"""The fault-injecting wire proxy: every verb, against a real server.

Each test drives a real :class:`ServeServer` through a
:class:`ChaosProxy` over localhost sockets and asserts the *client-side*
contract: faults surface as clean, bounded failures (never hangs), and
the self-healing pieces — deadlines, reconnects, opid idempotency —
absorb them without breaking the session.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.serve import ServeClient, ServeError, ServeServer
from repro.serve.faults import CLIENTWARD, ChaosProxy, FaultPlan
from repro.serve.resilient import ResilientClient


@asynccontextmanager
async def proxied_server(plan=None, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("members_per_shard", 3)
    kwargs.setdefault("seed", 5)
    srv = ServeServer(**kwargs)
    await srv.start()
    proxy = ChaosProxy("127.0.0.1", srv.port, plan=plan)
    await proxy.start()
    try:
        yield srv, proxy
    finally:
        await proxy.stop()
        await srv.shutdown()


def run(coro_fn):
    return asyncio.run(coro_fn())


class TestProxyPassThrough:
    def test_clean_forwarding_both_codecs(self):
        async def scenario():
            async with proxied_server() as (srv, proxy):
                for codec in ("json", "binary"):
                    cli = ServeClient(
                        "127.0.0.1", proxy.port, f"pt-{codec}", codec=codec
                    )
                    await cli.connect()
                    assert cli.negotiated_codec == codec
                    await cli.put_wait("k", f"v-{codec}")
                    assert await cli.get("k") == f"v-{codec}"
                    await cli.close()
                assert proxy.counters["frames"] > 0
                assert proxy.counters["connections"] == 2

        run(scenario)


class TestCut:
    def test_cut_all_fails_inflight_cleanly(self):
        async def scenario():
            async with proxied_server() as (srv, proxy):
                cli = ServeClient("127.0.0.1", proxy.port, "cut")
                await cli.connect()
                await cli.put_wait("k", "v0")
                proxy.stall_all(CLIENTWARD)  # park the replies...
                futures = [cli.put(f"k{i}", f"v{i}") for i in range(3)]
                await asyncio.sleep(0.05)
                assert proxy.cut_all(mid_frame=True) == 1
                for future in futures:
                    with pytest.raises(ServeError):
                        await asyncio.wait_for(future, 5)
                with pytest.raises(ServeError, match="not connected"):
                    cli.put("k", "after")
                await cli.close()

        run(scenario)

    def test_resilient_client_survives_cut(self):
        async def scenario():
            async with proxied_server() as (srv, proxy):
                cli = ResilientClient(
                    "127.0.0.1", proxy.port, "heal", request_timeout=5.0
                )
                await cli.connect()
                await cli.put("k", "v1")
                proxy.cut_all()
                await asyncio.sleep(0.02)
                # The next op reconnects (token-carrying) and succeeds;
                # read-your-writes must hold across the cut.
                assert await cli.get("k") == "v1"
                assert cli.counters["reconnects"] >= 1
                await cli.close()

        run(scenario)


class TestStallAndDeadline:
    def test_stalled_reply_hits_client_deadline(self):
        """A stalled (not closed) socket must not hang the caller: the
        per-request deadline fires, raises, and poisons the connection."""

        async def scenario():
            async with proxied_server() as (srv, proxy):
                cli = ServeClient(
                    "127.0.0.1", proxy.port, "stall", request_timeout=0.3
                )
                await cli.connect()
                proxy.stall_all(CLIENTWARD)
                with pytest.raises(ServeError, match="deadline"):
                    await asyncio.wait_for(cli.put_wait("k", "v"), 5)
                assert cli.timeouts == 1
                with pytest.raises(ServeError, match="not connected"):
                    cli.put("k", "again")
                proxy.resume_all()
                await cli.close()

        run(scenario)

    def test_resilient_client_rides_out_stall(self):
        async def scenario():
            async with proxied_server() as (srv, proxy):
                cli = ResilientClient(
                    "127.0.0.1", proxy.port, "ride", request_timeout=0.3
                )
                await cli.connect()
                await cli.put("k", "v1")
                proxy.stall_all(CLIENTWARD)
                asyncio.get_event_loop().call_later(0.5, proxy.resume_all)
                # First attempt times out; a later attempt (after the
                # stall lifts) succeeds on a fresh connection.
                assert await asyncio.wait_for(cli.get("k"), 10) == "v1"
                assert cli.counters["reconnects"] >= 1
                await cli.close()

        run(scenario)


class TestTruncation:
    def test_truncated_frame_is_a_clean_connection_loss(self):
        async def scenario():
            # Grace covers exactly the hello exchange (frame 0 in each
            # direction); the put is frame 1 and gets truncated.
            plan = FaultPlan(7, truncate_rate=1.0, grace_frames=1)
            async with proxied_server(plan) as (srv, proxy):
                cli = ServeClient(
                    "127.0.0.1", proxy.port, "trunc", request_timeout=2.0
                )
                await cli.connect()  # hello rides the grace window
                with pytest.raises(ServeError):
                    await asyncio.wait_for(cli.put_wait("k", "v"), 10)
                assert proxy.counters["truncations"] >= 1
                await cli.close()

        run(scenario)


class TestDuplication:
    def test_duplicated_put_applies_once_with_opid(self):
        """The proxy doubles every serverward frame; opid dedupe must
        keep the session history single-application."""

        async def scenario():
            plan = FaultPlan(3, dup_rate=1.0, grace_frames=1)
            async with proxied_server(plan) as (srv, proxy):
                cli = ServeClient("127.0.0.1", proxy.port, "dup")
                await cli.connect()
                reply = await cli.put_wait("k", "v1", opid="dup#0")
                assert reply["ok"]
                assert proxy.counters["dups"] >= 1
                writes = [
                    entry for entry in srv.history["dup"]
                    if entry[0] == "write"
                ]
                assert len(writes) == 1
                assert srv.metrics.counters["puts_deduped"] >= 1
                await cli.close()

        run(scenario)
