"""Tests for timeline rendering."""

from __future__ import annotations

from repro.analysis.timeline import (
    TimelineOptions,
    delivery_matrix,
    render_timeline,
)
from repro.sim.trace import TraceRecorder
from repro.types import MessageId


def mid(name: str, seqno: int = 0) -> MessageId:
    return MessageId(name, seqno)


def sample_trace() -> TraceRecorder:
    trace = TraceRecorder()
    trace.record(0.0, "send", source="a", msg_id=mid("a"), operation="inc")
    trace.record(1.0, "deliver", entity="a", msg_id=mid("a"), operation="inc")
    trace.record(2.0, "deliver", entity="b", msg_id=mid("a"), operation="inc")
    trace.record(2.5, "stable_point", entity="b", msg_id=mid("a"), index=0)
    trace.record(3.0, "drop", source="a", destination="c", msg_id=mid("a"))
    return trace


class TestRenderTimeline:
    def test_rows_for_each_entity(self):
        text = render_timeline(sample_trace())
        lines = text.splitlines()
        assert lines[0].startswith("a |")
        assert lines[1].startswith("b |")
        assert lines[2].startswith("c |")

    def test_glyphs_present(self):
        text = render_timeline(sample_trace())
        assert "b" in text.splitlines()[0]  # broadcast at a
        assert "*" in text.splitlines()[1]  # stable point at b
        assert "!" in text.splitlines()[2]  # drop toward c

    def test_priority_when_cells_collide(self):
        trace = TraceRecorder()
        trace.record(0.0, "deliver", entity="x", msg_id=mid("m"), operation="op")
        trace.record(0.0, "stable_point", entity="x", msg_id=mid("m"), index=0)
        text = render_timeline(trace, options=TimelineOptions(width=4))
        assert "*" in text.splitlines()[0]

    def test_control_traffic_hidden_by_default(self):
        trace = TraceRecorder()
        trace.record(0.0, "send", source="a", msg_id=mid("a"), operation="__ack__")
        assert render_timeline(trace) == "(no events)"
        shown = render_timeline(
            trace, options=TimelineOptions(include_control=True)
        )
        assert shown != "(no events)"

    def test_explicit_entity_order(self):
        text = render_timeline(sample_trace(), entities=["c", "a"])
        lines = text.splitlines()
        assert lines[0].startswith("c |")
        assert lines[1].startswith("a |")

    def test_axis_and_legend(self):
        text = render_timeline(sample_trace())
        assert "t=0.00" in text
        assert "legend" not in text  # legend is symbols, not the word
        assert "b=broadcast" in text

    def test_empty_trace(self):
        assert render_timeline(TraceRecorder()) == "(no events)"


class TestDeliveryMatrix:
    def test_labels_and_times(self):
        matrix = delivery_matrix(sample_trace())
        assert matrix["a"] == ["a:0@1.0"]
        assert matrix["b"] == ["a:0@2.0"]

    def test_from_live_run(self):
        from repro.broadcast.osend import OSendBroadcast
        from tests.conftest import build_group

        scheduler, net, stacks = build_group(OSendBroadcast, seed=2)
        stacks["a"].osend("op")
        scheduler.run()
        matrix = delivery_matrix(net.trace)
        assert set(matrix) == {"a", "b", "c"}
        text = render_timeline(net.trace)
        assert text.count("d") >= 3
