"""Tests for 1-copy serializability checking."""

from __future__ import annotations

from repro.analysis.serializability import (
    check_one_copy_serializability,
    check_sequence_legal,
)
from repro.core.state_machine import counter_machine
from repro.graph.depgraph import DependencyGraph
from repro.types import Message, MessageId


def mid(name: str) -> MessageId:
    return MessageId(name, 0)


def inc_graph():
    graph = DependencyGraph()
    graph.add(mid("i1"))
    graph.add(mid("i2"))
    graph.add(mid("rd"), [mid("i1"), mid("i2")])
    messages = {
        mid("i1"): Message(mid("i1"), "inc"),
        mid("i2"): Message(mid("i2"), "inc"),
        mid("rd"): Message(mid("rd"), "rd"),
    }
    return graph, messages


class TestSerializability:
    def test_agreeing_states_with_witness(self):
        graph, messages = inc_graph()
        report = check_one_copy_serializability(
            graph, messages, counter_machine(), {"a": 2, "b": 2}
        )
        assert report.serializable
        assert report.witness is not None
        assert report.witness[-1] == mid("rd")

    def test_disagreeing_states_fail_fast(self):
        graph, messages = inc_graph()
        report = check_one_copy_serializability(
            graph, messages, counter_machine(), {"a": 2, "b": 3}
        )
        assert not report.serializable
        assert report.sequences_examined == 0

    def test_state_unreachable_by_any_serial_order(self):
        graph, messages = inc_graph()
        report = check_one_copy_serializability(
            graph, messages, counter_machine(), {"a": 99, "b": 99}
        )
        assert not report.serializable
        assert report.witness is None
        assert report.sequences_examined == 2  # both extensions tried

    def test_empty_states_trivially_serializable(self):
        graph, messages = inc_graph()
        report = check_one_copy_serializability(
            graph, messages, counter_machine(), {}
        )
        assert report.serializable

    def test_report_truthiness(self):
        graph, messages = inc_graph()
        assert check_one_copy_serializability(
            graph, messages, counter_machine(), {"a": 2}
        )


class TestSequenceLegality:
    def test_legal_sequence(self):
        graph, _ = inc_graph()
        assert check_sequence_legal(
            graph, [mid("i1"), mid("i2"), mid("rd")]
        )

    def test_illegal_sequence(self):
        graph, _ = inc_graph()
        assert not check_sequence_legal(
            graph, [mid("rd"), mid("i1"), mid("i2")]
        )

    def test_unknown_labels_unconstrained(self):
        graph, _ = inc_graph()
        assert check_sequence_legal(
            graph, [mid("stranger"), mid("i1"), mid("i2"), mid("rd")]
        )
