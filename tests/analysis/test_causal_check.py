"""Tests for causal-delivery verification."""

from __future__ import annotations

from repro.analysis.causal_check import (
    sequences_respect_fifo,
    verify_against_clocks,
    verify_against_graph,
)
from repro.clocks.vector import VectorClock
from repro.graph.depgraph import DependencyGraph
from repro.types import MessageId


def mid(name: str, seqno: int = 0) -> MessageId:
    return MessageId(name, seqno)


def chain_graph() -> DependencyGraph:
    graph = DependencyGraph()
    graph.add(mid("m1"))
    graph.add(mid("m2"), mid("m1"))
    return graph


class TestGraphVerification:
    def test_correct_sequence_passes(self):
        sequences = {"a": [mid("m1"), mid("m2")]}
        assert verify_against_graph(chain_graph(), sequences) == []

    def test_inverted_sequence_flagged(self):
        sequences = {"a": [mid("m2"), mid("m1")]}
        violations = verify_against_graph(chain_graph(), sequences)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.entity == "a"
        assert violation.ancestor == mid("m1")
        assert violation.descendant == mid("m2")

    def test_missing_ancestor_flagged(self):
        sequences = {"a": [mid("m2")]}
        violations = verify_against_graph(chain_graph(), sequences)
        assert len(violations) == 1
        assert violations[0].ancestor_position == -1

    def test_unknown_labels_ignored(self):
        sequences = {"a": [mid("stranger"), mid("m1"), mid("m2")]}
        assert verify_against_graph(chain_graph(), sequences) == []

    def test_multiple_members_checked_independently(self):
        sequences = {
            "good": [mid("m1"), mid("m2")],
            "bad": [mid("m2"), mid("m1")],
        }
        violations = verify_against_graph(chain_graph(), sequences)
        assert [v.entity for v in violations] == ["bad"]


class TestClockVerification:
    def test_respecting_clock_order_passes(self):
        clocks = {
            mid("m1"): VectorClock({"a": 1}),
            mid("m2"): VectorClock({"a": 1, "b": 1}),
        }
        sequences = {"x": [mid("m1"), mid("m2")]}
        assert verify_against_clocks(clocks, sequences) == []

    def test_violating_clock_order_flagged(self):
        clocks = {
            mid("m1"): VectorClock({"a": 1}),
            mid("m2"): VectorClock({"a": 1, "b": 1}),
        }
        sequences = {"x": [mid("m2"), mid("m1")]}
        assert len(verify_against_clocks(clocks, sequences)) == 1

    def test_concurrent_any_order_passes(self):
        clocks = {
            mid("m1"): VectorClock({"a": 1}),
            mid("m2"): VectorClock({"b": 1}),
        }
        for order in ([mid("m1"), mid("m2")], [mid("m2"), mid("m1")]):
            assert verify_against_clocks(clocks, {"x": order}) == []

    def test_unstamped_labels_ignored(self):
        clocks = {mid("m1"): VectorClock({"a": 1})}
        sequences = {"x": [mid("ghost"), mid("m1")]}
        assert verify_against_clocks(clocks, sequences) == []


class TestFifoVerification:
    def test_monotone_seqnos_pass(self):
        sequences = {"x": [mid("a", 0), mid("b", 0), mid("a", 1)]}
        assert sequences_respect_fifo(sequences) == []

    def test_decreasing_seqno_flagged(self):
        sequences = {"x": [mid("a", 1), mid("a", 0)]}
        assert len(sequences_respect_fifo(sequences)) == 1

    def test_duplicate_seqno_flagged(self):
        sequences = {"x": [mid("a", 0), mid("a", 0)]}
        assert len(sequences_respect_fifo(sequences)) == 1
