"""The black-box CC/CCv/CM checker: clean histories pass, bad ones don't.

Histories here are hand-built client observations — no simulator, no
server.  The mutation suite is the auditor's own acceptance test: a
checker that cannot convict a corrupted history proves nothing when it
acquits a real one.
"""

from __future__ import annotations

import pytest

from repro.analysis.wire_history import (
    WireHistory,
    WireRecorder,
    check_wire_history,
    corrupt_lost_put,
    corrupt_reorder_session,
    corrupt_stale_read,
)


def history(**sessions):
    """history(a=[("put","x",1), ("get","x",1)], b=[...])."""
    recorders = []
    for name, ops in sessions.items():
        recorder = WireRecorder(name)
        for op in ops:
            if op[0] == "put":
                recorder.put(op[1], op[2])
            elif op[0] == "get":
                recorder.get(op[1], op[2])
            else:
                recorder.read(op[1])
        recorders.append(recorder)
    return WireHistory.merge(recorders)


def patterns(h, levels=("CC", "CCv", "CM")):
    return {v.pattern for v in check_wire_history(h, levels)}


class TestCleanHistories:
    def test_empty_and_trivial(self):
        assert check_wire_history(history()) == []
        assert check_wire_history(history(a=[("put", "x", 1)])) == []

    def test_read_your_writes(self):
        h = history(a=[
            ("put", "x", 1), ("get", "x", 1),
            ("put", "x", 2), ("get", "x", 2),
        ])
        assert check_wire_history(h) == []

    def test_cross_session_observation(self):
        h = history(
            a=[("put", "x", 1), ("put", "y", 2)],
            b=[("get", "y", 2), ("get", "x", 1)],
        )
        assert check_wire_history(h) == []

    def test_concurrent_writes_read_differently_is_cc(self):
        # a and b each read their own write first — fine under CC and CM
        # (no convergence requirement between the two orders is violated
        # because neither session reads both orders).
        h = history(
            a=[("put", "x", 1), ("get", "x", 1)],
            b=[("put", "x", 2), ("get", "x", 2)],
        )
        assert check_wire_history(h) == []

    def test_missing_key_read_is_fine(self):
        h = history(a=[("get", "nope", None), ("put", "x", 1)])
        assert check_wire_history(h) == []

    def test_barrier_read_block(self):
        h = history(a=[
            ("put", "x", 1), ("put", "y", 2),
            ("read", {"x": 1, "y": 2}),
        ])
        assert check_wire_history(h) == []


class TestBadPatterns:
    def test_thin_air_read(self):
        h = history(a=[("get", "x", "never-written")])
        assert patterns(h) == {"thin-air-read"}

    def test_write_co_init_read_is_lost_update(self):
        h = history(a=[("put", "x", 1), ("get", "x", None)])
        assert "write-co-init-read" in patterns(h)

    def test_write_co_read_is_stale_read(self):
        h = history(a=[
            ("put", "x", 1), ("put", "x", 2), ("get", "x", 1),
        ])
        assert "write-co-read" in patterns(h)

    def test_stale_read_across_sessions(self):
        # b observes x=2 (which causally follows x=1) then reads x=1.
        h = history(
            a=[("put", "x", 1), ("put", "x", 2)],
            b=[("get", "x", 2), ("get", "x", 1)],
        )
        assert "write-co-read" in patterns(h)

    def test_undifferentiated_history_is_reported(self):
        h = history(a=[("put", "x", 1)], b=[("put", "x", 1)])
        assert "undifferentiated" in patterns(h)

    def test_cyclic_cf_needs_ccv(self):
        # Classic convergence anomaly: two sessions disagree on the
        # final order of concurrent writes they both observed.
        h = history(
            a=[("put", "x", 1)],
            b=[("put", "x", 2)],
            c=[("get", "x", 1), ("get", "x", 2)],
            d=[("get", "x", 2), ("get", "x", 1)],
        )
        assert patterns(h, levels=("CC",)) == set()
        assert patterns(h) == {"cyclic-cf"}

    def test_write_hb_init_read_needs_cm(self):
        # From arXiv:1611.00580 (Fig. 4 shape): o's session first reads
        # x=1, then y=1; the write of y=1 is po-after a second write of
        # x... build the standard CM-only anomaly:
        #   a: put x 1, put y 1
        #   b: get y 1, put x 2
        #   c: get x 2, get x 1
        # c's second read returns a value overwritten in hb_c (via b's
        # read of y folding a's po edge into hb), though not in co.
        h = history(
            a=[("put", "x", 1), ("put", "y", 1)],
            b=[("get", "y", 1), ("put", "x", 2)],
            c=[("get", "x", 2), ("get", "x", 1)],
        )
        assert "write-co-read" in patterns(h) or "cyclic-hb" in patterns(h)

    def test_cyclic_co(self):
        # a reads b's value before b wrote anything b could only write
        # after reading a's — needs hand-built po that contradicts wr.
        h = history(
            a=[("get", "x", 2), ("put", "y", 1)],
            b=[("get", "y", 1), ("put", "x", 2)],
        )
        assert patterns(h) == {"cyclic-co"}


class TestMonotonicSessionAnomalies:
    def test_monotonic_reads_violation_is_caught(self):
        # b sees the newer value then the older one.
        h = history(
            a=[("put", "x", "old"), ("put", "x", "new")],
            b=[("get", "x", "new"), ("get", "x", "old")],
        )
        assert patterns(h) & {"write-co-read", "cyclic-cf"}

    def test_read_your_writes_violation_is_caught(self):
        h = history(a=[("put", "x", "mine"), ("get", "x", None)])
        assert "write-co-init-read" in patterns(h)


class TestMutations:
    """Corrupt a *clean* captured history; the checker must convict."""

    def clean(self):
        h = history(
            alice=[
                ("put", "x", "a1"), ("get", "x", "a1"),
                ("put", "x", "a2"), ("get", "x", "a2"),
                ("put", "y", "a3"), ("read", {"x": "a2", "y": "a3"}),
            ],
            bob=[
                ("put", "z", "b1"),
                ("get", "x", "a2"),
                ("get", "z", "b1"),
            ],
        )
        assert check_wire_history(h) == []
        return h

    def test_reordered_session_is_flagged(self):
        mutated = corrupt_reorder_session(self.clean())
        assert patterns(mutated)

    def test_stale_read_is_flagged(self):
        mutated = corrupt_stale_read(self.clean())
        found = check_wire_history(mutated)
        assert any(v.pattern == "write-co-read" for v in found)

    def test_lost_put_is_flagged(self):
        mutated = corrupt_lost_put(self.clean())
        found = check_wire_history(mutated)
        assert any(
            v.pattern in ("write-co-init-read", "write-hb-init-read")
            for v in found
        )

    def test_violation_strings_are_informative(self):
        mutated = corrupt_stale_read(self.clean())
        text = str(check_wire_history(mutated)[0])
        assert "write-co-read" in text and "alice" in text


class TestLevels:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown consistency"):
            check_wire_history(history(), levels=("CCvv",))

    def test_level_tagging(self):
        h = history(
            a=[("put", "x", 1)],
            b=[("put", "x", 2)],
            c=[("get", "x", 1), ("get", "x", 2)],
            d=[("get", "x", 2), ("get", "x", 1)],
        )
        found = check_wire_history(h)
        assert [v.level for v in found] == ["CCv"]
