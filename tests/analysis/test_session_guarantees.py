"""Tests for session-guarantee checkers."""

from __future__ import annotations

from repro.analysis.session_guarantees import (
    SessionOp,
    check_all_session_guarantees,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_writes_follow_reads,
    sessions_from_frontend_run,
)
from repro.broadcast.osend import OSendBroadcast
from repro.core.commutativity import CommutativitySpec
from repro.core.frontend import FrontEndManager
from repro.graph.depgraph import DependencyGraph
from repro.net.latency import ConstantLatency
from repro.types import MessageId
from tests.conftest import build_group


def mid(name: str, seqno: int = 0) -> MessageId:
    return MessageId(name, seqno)


def chained_graph() -> DependencyGraph:
    graph = DependencyGraph()
    graph.add(mid("w1"))
    graph.add(mid("r1"), mid("w1"))
    graph.add(mid("w2"), mid("r1"))
    graph.add(mid("r2"), mid("w2"))
    return graph


class TestCheckers:
    def test_chained_session_satisfies_everything(self):
        graph = chained_graph()
        sessions = {
            "c": [
                SessionOp("write", mid("w1")),
                SessionOp("read", mid("r1"), frozenset({mid("w1")})),
                SessionOp("write", mid("w2")),
                SessionOp("read", mid("r2"), frozenset({mid("w1"), mid("w2")})),
            ]
        }
        results = check_all_session_guarantees(graph, sessions)
        assert all(not v for v in results.values())

    def test_read_your_writes_violation(self):
        graph = DependencyGraph()
        graph.add(mid("w1"))
        graph.add(mid("r1"))  # read does NOT follow the write
        sessions = {
            "c": [
                SessionOp("write", mid("w1")),
                SessionOp("read", mid("r1")),
            ]
        }
        violations = check_read_your_writes(graph, sessions)
        assert len(violations) == 1
        assert violations[0].missing == mid("w1")

    def test_monotonic_writes_violation(self):
        graph = DependencyGraph()
        graph.add(mid("w1"))
        graph.add(mid("w2"))  # concurrent with w1
        sessions = {
            "c": [
                SessionOp("write", mid("w1")),
                SessionOp("write", mid("w2")),
            ]
        }
        assert len(check_monotonic_writes(graph, sessions)) == 1

    def test_monotonic_reads_violation(self):
        graph = DependencyGraph()
        graph.add(mid("w1"))
        graph.add(mid("r1"), mid("w1"))
        graph.add(mid("r2"))  # later read missing w1
        sessions = {
            "c": [
                SessionOp("read", mid("r1"), frozenset({mid("w1")})),
                SessionOp("read", mid("r2"), frozenset()),
            ]
        }
        violations = check_monotonic_reads(graph, sessions)
        assert [v.missing for v in violations] == [mid("w1")]

    def test_writes_follow_reads_violation(self):
        graph = DependencyGraph()
        graph.add(mid("w_other"))
        graph.add(mid("r1"), mid("w_other"))
        graph.add(mid("w_mine"))  # does not follow w_other
        sessions = {
            "c": [
                SessionOp("read", mid("r1"), frozenset({mid("w_other")})),
                SessionOp("write", mid("w_mine")),
            ]
        }
        assert len(check_writes_follow_reads(graph, sessions)) == 1

    def test_sessions_are_independent(self):
        graph = DependencyGraph()
        graph.add(mid("w1"))
        graph.add(mid("r1"))
        sessions = {
            "writer": [SessionOp("write", mid("w1"))],
            "reader": [SessionOp("read", mid("r1"))],
        }
        # reader never wrote: no guarantee couples it to writer's write.
        results = check_all_session_guarantees(graph, sessions)
        assert all(not v for v in results.values())


class TestFrontEndDiscipline:
    def test_frontend_runs_satisfy_all_guarantees(self):
        """The §6.1 discipline provides the session guarantees."""
        spec = CommutativitySpec(commutative_ops={"inc", "dec"})
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=ConstantLatency(0.5)
        )
        frontends = {
            m: FrontEndManager(stacks[m], spec) for m in ("a", "b")
        }
        issued: dict = {"a": [], "b": []}
        script = [
            ("a", "inc"), ("a", "rd"), ("b", "inc"), ("a", "inc"),
            ("b", "rd"), ("a", "rd"), ("b", "dec"), ("b", "rd"),
        ]
        for session, operation in script:
            scheduler.run()  # let knowledge propagate between requests
            label = frontends[session].request(operation)
            issued[session].append((operation, label))
        scheduler.run()
        graph = stacks["c"].graph
        sessions = sessions_from_frontend_run(
            graph, issued, write_operations={"inc", "dec"}
        )
        results = check_all_session_guarantees(graph, sessions)
        assert all(not v for v in results.values()), results

    def test_spontaneous_traffic_violates_guarantees(self):
        scheduler, _, stacks = build_group(
            OSendBroadcast, latency=ConstantLatency(0.5)
        )
        w = stacks["a"].osend("inc")
        r = stacks["a"].osend("rd")  # spontaneous: no declared dependency
        scheduler.run()
        graph = stacks["c"].graph
        sessions = sessions_from_frontend_run(
            graph, {"a": [("inc", w), ("rd", r)]}, write_operations={"inc"}
        )
        violations = check_read_your_writes(graph, sessions)
        assert len(violations) == 1
