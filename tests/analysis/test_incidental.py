"""Tests for the incidental-vs-semantic ordering analyzer."""

from __future__ import annotations

from repro.analysis.incidental import (
    compare_orderings,
    incidental_pairs,
    semantic_pairs,
)
from repro.broadcast.cbcast import CbcastBroadcast
from repro.clocks.vector import VectorClock
from repro.graph.depgraph import DependencyGraph
from repro.net.latency import ConstantLatency
from repro.types import MessageId
from tests.conftest import build_group


def mid(name: str, seqno: int = 0) -> MessageId:
    return MessageId(name, seqno)


class TestStaticComparison:
    def test_declared_chain_vs_matching_clocks(self):
        graph = DependencyGraph()
        graph.add(mid("m1"))
        graph.add(mid("m2"), mid("m1"))
        clocks = {
            mid("m1"): VectorClock({"a": 1}),
            mid("m2"): VectorClock({"a": 1, "b": 1}),
        }
        comparison = compare_orderings(graph, clocks)
        assert comparison.semantic_pairs == 1
        assert comparison.clock_pairs == 1
        assert comparison.incidental_pairs == 0

    def test_clock_only_ordering_counted_as_incidental(self):
        # Application declares both spontaneous; clocks chain them.
        graph = DependencyGraph()
        graph.add(mid("m1"))
        graph.add(mid("m2"))
        clocks = {
            mid("m1"): VectorClock({"a": 1}),
            mid("m2"): VectorClock({"a": 1, "b": 1}),
        }
        comparison = compare_orderings(graph, clocks)
        assert comparison.semantic_pairs == 0
        assert comparison.incidental_pairs == 1
        assert comparison.incidental_fraction == 1.0
        assert incidental_pairs(graph, clocks) == [(mid("m1"), mid("m2"))]

    def test_labels_outside_intersection_ignored(self):
        graph = DependencyGraph()
        graph.add(mid("known"))
        graph.add(mid("graph_only"))
        clocks = {
            mid("known"): VectorClock({"a": 1}),
            mid("clock_only"): VectorClock({"b": 1}),
        }
        comparison = compare_orderings(graph, clocks)
        assert comparison.messages == 1
        assert comparison.clock_pairs == 0

    def test_semantic_pairs_transitive(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        graph.add(mid("b"), mid("a"))
        graph.add(mid("c"), mid("b"))
        assert len(semantic_pairs(graph)) == 3  # ab, bc, ac

    def test_zero_clock_pairs_fraction(self):
        graph = DependencyGraph()
        graph.add(mid("a"))
        clocks = {mid("a"): VectorClock({"a": 1})}
        assert compare_orderings(graph, clocks).incidental_fraction == 0.0


class TestLiveCbcastRun:
    def test_sequential_senders_create_incidental_order(self):
        """Independent requests sent after seeing each other become
        clock-ordered though no application dependency exists."""
        scheduler, _, stacks = build_group(
            CbcastBroadcast, latency=ConstantLatency(0.5)
        )
        stacks["a"].bcast("op")
        scheduler.run()  # b sees a's message before sending...
        stacks["b"].bcast("op")
        scheduler.run()

        # The application meant them spontaneous:
        declared = DependencyGraph()
        clocks = {}
        for env in stacks["c"].delivered_envelopes:
            declared.add(env.msg_id)
            clocks[env.msg_id] = env.metadata["vclock"]

        comparison = compare_orderings(declared, clocks)
        assert comparison.semantic_pairs == 0
        assert comparison.incidental_pairs == 1
