"""Tests for trace-derived metrics."""

from __future__ import annotations

import math

from repro.analysis.metrics import (
    SummaryStats,
    delivery_latencies,
    hold_durations,
    holdback_summary,
    latency_summary,
    message_cost,
)
from repro.sim.trace import TraceRecorder
from repro.types import MessageId


def mid(name: str, seqno: int = 0) -> MessageId:
    return MessageId(name, seqno)


class TestSummaryStats:
    def test_of_empty_sample(self):
        stats = SummaryStats.of([])
        assert stats.count == 0
        assert math.isnan(stats.mean)

    def test_of_single_value(self):
        stats = SummaryStats.of([2.0])
        assert stats.count == 1
        assert stats.mean == 2.0
        assert stats.median == 2.0
        assert stats.p95 == 2.0

    def test_basic_statistics(self):
        stats = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == 2.5

    def test_p95_below_max(self):
        stats = SummaryStats.of(list(map(float, range(100))))
        assert stats.median == 49.5
        assert 90 < stats.p95 < 99


def sample_trace() -> TraceRecorder:
    trace = TraceRecorder()
    trace.record(0.0, "send", msg_id=mid("m"), operation="inc")
    trace.record(0.5, "hold", entity="a", msg_id=mid("m"), queue=1)
    trace.record(1.0, "deliver", entity="a", msg_id=mid("m"), operation="inc")
    trace.record(2.0, "deliver", entity="b", msg_id=mid("m"), operation="inc")
    trace.record(3.0, "send", msg_id=mid("ack"), operation="__ack__")
    trace.record(4.0, "deliver", entity="a", msg_id=mid("ack"), operation="__ack__")
    return trace


class TestLatency:
    def test_delivery_latencies_per_member(self):
        latencies = delivery_latencies(sample_trace())
        assert latencies[(mid("m"), "a")] == 1.0
        assert latencies[(mid("m"), "b")] == 2.0

    def test_latency_summary_all(self):
        stats = latency_summary(sample_trace())
        assert stats.count == 3  # includes the ack

    def test_latency_summary_filtered(self):
        stats = latency_summary(sample_trace(), operations={"inc"})
        assert stats.count == 2
        assert stats.mean == 1.5

    def test_earliest_send_wins_for_rebroadcasts(self):
        trace = TraceRecorder()
        trace.record(0.0, "send", msg_id=mid("m"), operation="op")
        trace.record(5.0, "send", msg_id=mid("m"), operation="op")
        trace.record(6.0, "deliver", entity="a", msg_id=mid("m"), operation="op")
        latencies = delivery_latencies(trace)
        assert latencies[(mid("m"), "a")] == 6.0


class TestHoldback:
    def test_holdback_summary(self):
        stats = holdback_summary(sample_trace())
        assert stats.count == 1
        assert stats.mean == 1.0

    def test_hold_durations(self):
        stats = hold_durations(sample_trace())
        assert stats.count == 1
        assert stats.mean == 0.5


class TestMessageCost:
    def test_splits_app_and_control(self):
        class FakeNetwork:
            hops_sent = 6
            hops_delivered = 6

        cost = message_cost(sample_trace(), FakeNetwork())
        assert cost.app_broadcasts == 1
        assert cost.control_broadcasts == 1
        assert cost.control_overhead_ratio == 1.0
        assert cost.hops_sent == 6

    def test_zero_app_broadcasts(self):
        cost = message_cost(TraceRecorder(), object())
        assert cost.control_overhead_ratio == 0.0
