"""Tests for ASCII table rendering."""

from __future__ import annotations

from repro.analysis.reporting import format_table


class TestFormatTable:
    def test_headers_and_rows_present(self):
        table = format_table(["name", "value"], [["x", 1], ["y", 2]])
        lines = table.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert any("x" in line for line in lines)

    def test_title_prepended(self):
        table = format_table(["h"], [["v"]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        table = format_table(["h"], [[1.23456]], float_format="{:.2f}")
        assert "1.23" in table
        assert "1.2345" not in table

    def test_bools_not_formatted_as_floats(self):
        table = format_table(["h"], [[True]])
        assert "True" in table

    def test_columns_aligned(self):
        table = format_table(
            ["metric", "n"], [["long-metric-name", 1], ["x", 22]]
        )
        lines = table.splitlines()
        # All rows same width.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2
