"""CrossShardChecker unit tests against hand-built delivery logs."""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.analysis.invariants import CrossShardChecker, iter_incarnations
from repro.types import Envelope, Message, MessageId


class StubProtocol:
    """Just enough surface for :func:`iter_incarnations`."""

    def __init__(
        self,
        delivered: Iterable[MessageId],
        skipped: Iterable[MessageId] = (),
        archive: Iterable[
            Tuple[Iterable[MessageId], Iterable[MessageId]]
        ] = (),
    ) -> None:
        self.incarnation_archive: List[Tuple[List[Envelope], Set[MessageId]]] = [
            ([_env(label) for label in labels], set(skips))
            for labels, skips in archive
        ]
        self.incarnation = len(self.incarnation_archive)
        self._delivered_envelopes = [_env(label) for label in delivered]
        self._skipped_stable = set(skipped)


def _env(label: MessageId) -> Envelope:
    return Envelope(Message(label, "op", None))


A0 = MessageId("a", 0)
A1 = MessageId("a", 1)
B0 = MessageId("b", 0)
C0 = MessageId("c", 0)


def checker(protocols, **overrides) -> CrossShardChecker:
    """A two-shard world: labels from 'a'/'c' on shard 0, 'b' on shard 1."""
    config = dict(
        shard_of_member={"m0": 0, "m1": 1},
        shard_of_label={A0: 0, A1: 0, B0: 1, C0: 0},
        dependencies={},
        cross_dependencies={},
        session_batches={},
        issue_order=[A0, A1, B0, C0],
    )
    config.update(overrides)
    return CrossShardChecker(protocols, **config)


class TestHappensBefore:
    def test_closure_spans_session_and_dependency_edges(self):
        check = checker(
            {},
            dependencies={C0: frozenset({A1})},
            session_batches={"s": [[A0], [A1]]},
        )
        ancestors = check.happens_before()
        assert ancestors[C0] == {A0, A1}
        assert ancestors[A1] == {A0}
        assert ancestors[A0] == set()

    def test_cross_deps_are_happens_before_edges(self):
        check = checker(
            {},
            cross_dependencies={B0: frozenset({A0})},
            dependencies={},
            session_batches={"s": [[B0], [C0]]},
        )
        # C0 follows B0 in session order; B0 cross-depends on A0 — the
        # shard-0 obligation A0 < C0 exists only through the cross edge.
        assert check.happens_before()[C0] == {A0, B0}

    def test_read_batch_labels_are_concurrent(self):
        check = checker({}, session_batches={"s": [[A0, A1], [C0]]})
        ancestors = check.happens_before()
        assert A1 not in ancestors[A0]
        assert A0 not in ancestors[A1]
        assert ancestors[C0] == {A0, A1}


class TestCheck:
    def test_ordered_log_passes(self):
        check = checker(
            {"m0": StubProtocol([A0, A1, C0])},
            dependencies={A1: frozenset({A0}), C0: frozenset({A1})},
        )
        assert check.check() == []

    def test_reordered_ancestor_flagged(self):
        check = checker(
            {"m0": StubProtocol([C0, A1, A0])},
            dependencies={A1: frozenset({A0}), C0: frozenset({A1})},
        )
        violations = check.check()
        assert violations
        assert all(v.invariant == "cross-shard-causal" for v in violations)
        assert any("delivered before" in v.detail for v in violations)

    def test_missing_ancestor_flagged(self):
        check = checker(
            {"m0": StubProtocol([C0])},
            dependencies={C0: frozenset({A0})},
        )
        (violation,) = check.check()
        assert "without its happens-before ancestor" in violation.detail

    def test_skipped_ancestor_is_exempt(self):
        check = checker(
            {"m0": StubProtocol([C0], skipped=[A0])},
            dependencies={C0: frozenset({A0})},
        )
        assert check.check() == []

    def test_foreign_shard_ancestors_impose_no_local_order(self):
        # C0 (shard 0) happens-after B0 (shard 1); m0 never delivers B0
        # and must not be penalised for it.
        check = checker(
            {"m0": StubProtocol([A0, C0])},
            dependencies={C0: frozenset({A0})},
            cross_dependencies={C0: frozenset({B0})},
        )
        assert check.check() == []

    def test_transitive_obligation_via_cross_edge(self):
        # A0 < B0 (cross) < C0 (session) — delivering C0 before A0 on
        # shard 0 violates the closure even with no direct shard-0 edge.
        check = checker(
            {"m0": StubProtocol([C0, A0])},
            cross_dependencies={B0: frozenset({A0})},
            session_batches={"s": [[B0], [C0]]},
        )
        violations = check.check()
        assert len(violations) == 1
        assert "C0" not in violations[0].detail  # labels render as c:0
        assert "c:0" in violations[0].detail and "a:0" in violations[0].detail

    def test_each_incarnation_checked_independently(self):
        # Incarnation 0 delivered in order; the restarted life redelivers
        # out of order — only the current incarnation is flagged.
        protocol = StubProtocol(
            delivered=[C0, A0],
            archive=[([A0, C0], [])],
        )
        check = checker(
            {"m0": protocol}, dependencies={C0: frozenset({A0})}
        )
        violations = check.check()
        assert len(violations) == 1
        assert "incarnation 1" in violations[0].detail

    def test_non_ledger_traffic_ignored(self):
        noise = MessageId("ctl", 0)
        check = checker(
            {"m0": StubProtocol([noise, A0, C0])},
            dependencies={C0: frozenset({A0})},
        )
        assert check.check() == []


class TestIterIncarnations:
    def test_yields_archive_then_current(self):
        protocol = StubProtocol(
            delivered=[C0],
            skipped=[A1],
            archive=[([A0], [B0])],
        )
        lives = list(iter_incarnations(protocol))
        assert [(inc, [e.msg_id for e in envs], skips) for inc, envs, skips in lives] == [
            (0, [A0], {B0}),
            (1, [C0], {A1}),
        ]
