"""Tests for throughput and settle-time metrics."""

from __future__ import annotations

from repro.analysis.throughput import (
    delivery_throughput,
    per_member_delivery_counts,
    settle_time,
)
from repro.sim.trace import TraceRecorder
from repro.types import MessageId


def mid(name: str, seqno: int = 0) -> MessageId:
    return MessageId(name, seqno)


def sample_trace() -> TraceRecorder:
    trace = TraceRecorder()
    trace.record(0.0, "send", msg_id=mid("m", 0), operation="inc")
    trace.record(1.0, "deliver", entity="a", msg_id=mid("m", 0), operation="inc")
    trace.record(1.5, "deliver", entity="b", msg_id=mid("m", 0), operation="inc")
    trace.record(2.0, "send", msg_id=mid("m", 1), operation="inc")
    trace.record(5.0, "deliver", entity="a", msg_id=mid("m", 1), operation="inc")
    trace.record(5.0, "deliver", entity="b", msg_id=mid("m", 1), operation="inc")
    trace.record(5.5, "deliver", entity="a", msg_id=mid("k", 0), operation="__ack__")
    return trace


class TestThroughput:
    def test_counts_only_app_deliveries(self):
        report = delivery_throughput(sample_trace())
        assert report.app_deliveries == 4

    def test_rate_over_span(self):
        report = delivery_throughput(sample_trace())
        assert report.span == 4.0  # 1.0 .. 5.0
        assert report.per_second == 1.0

    def test_peak_window(self):
        report = delivery_throughput(sample_trace(), window=1.0)
        assert report.peak_window_rate == 2.0  # two deliveries at t=5

    def test_empty_trace(self):
        report = delivery_throughput(TraceRecorder())
        assert report.app_deliveries == 0
        assert report.per_second == 0.0


class TestSettleTime:
    def test_tail_after_last_send(self):
        assert settle_time(sample_trace()) == 3.0  # 5.0 - 2.0

    def test_none_without_traffic(self):
        assert settle_time(TraceRecorder()) is None


class TestPerMemberCounts:
    def test_counts_exclude_control(self):
        counts = per_member_delivery_counts(sample_trace())
        assert counts == {"a": 2, "b": 2}

    def test_live_run(self):
        from repro.broadcast.osend import OSendBroadcast
        from tests.conftest import build_group

        scheduler, net, stacks = build_group(OSendBroadcast, seed=1)
        for _ in range(3):
            stacks["a"].osend("op")
        scheduler.run()
        counts = per_member_delivery_counts(net.trace)
        assert counts == {"a": 3, "b": 3, "c": 3}
        report = delivery_throughput(net.trace)
        assert report.app_deliveries == 9
