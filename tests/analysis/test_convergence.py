"""Tests for agreement checkers."""

from __future__ import annotations

from repro.analysis.convergence import (
    divergence_between_sync_points,
    same_message_sets_between_sync_points,
    split_by_sync_points,
    states_agree,
)
from repro.types import MessageId


def mid(name: str, seqno: int = 0) -> MessageId:
    return MessageId(name, seqno)


class TestStatesAgree:
    def test_equal_states_pass(self):
        assert states_agree({"a": 1, "b": 1, "c": 1}) == []

    def test_unequal_states_reported(self):
        disagreements = states_agree({"a": 1, "b": 2, "c": 1})
        assert len(disagreements) == 1
        d = disagreements[0]
        assert {d.entity_a, d.entity_b} == {"a", "b"}
        assert {d.value_a, d.value_b} == {1, 2}

    def test_empty_and_singleton(self):
        assert states_agree({}) == []
        assert states_agree({"a": object()}) == []


class TestSegments:
    def test_split_by_sync_points(self):
        sequence = [mid("c1"), mid("s1"), mid("c2"), mid("c3"), mid("s2")]
        segments = split_by_sync_points(sequence, [mid("s1"), mid("s2")])
        assert segments[0] == {mid("c1"), mid("s1")}
        assert segments[1] == {mid("c2"), mid("c3"), mid("s2")}
        assert segments[2] == set()

    def test_same_sets_different_orders_pass(self):
        sync = [mid("s")]
        sequences = {
            "a": [mid("c1"), mid("c2"), mid("s")],
            "b": [mid("c2"), mid("c1"), mid("s")],
        }
        assert same_message_sets_between_sync_points(sequences, sync) == []

    def test_differing_sets_flagged(self):
        sync = [mid("s")]
        sequences = {
            "a": [mid("c1"), mid("s")],
            "b": [mid("c1"), mid("c2"), mid("s")],
        }
        disagreements = same_message_sets_between_sync_points(sequences, sync)
        assert len(disagreements) == 1
        assert disagreements[0].kind == "segment_set"

    def test_trailing_open_segment_compared(self):
        sequences = {
            "a": [mid("s"), mid("c1")],
            "b": [mid("s")],
        }
        disagreements = same_message_sets_between_sync_points(
            sequences, [mid("s")]
        )
        assert len(disagreements) == 1


class TestDivergence:
    def test_identical_sequences_have_zero_divergence(self):
        sequences = {
            "a": [mid("m1"), mid("m2")],
            "b": [mid("m1"), mid("m2")],
        }
        assert divergence_between_sync_points(sequences) == 0

    def test_swapped_positions_counted(self):
        sequences = {
            "a": [mid("m1"), mid("m2")],
            "b": [mid("m2"), mid("m1")],
        }
        assert divergence_between_sync_points(sequences) == 2

    def test_length_difference_counted(self):
        sequences = {
            "a": [mid("m1"), mid("m2")],
            "b": [mid("m1")],
        }
        assert divergence_between_sync_points(sequences) == 1

    def test_single_member_trivially_zero(self):
        assert divergence_between_sync_points({"a": [mid("m")]}) == 0
