"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Sequence, Type

import pytest

from repro.broadcast.base import BroadcastProtocol
from repro.group.membership import GroupMembership
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.types import EntityId, MessageId


@pytest.fixture
def scheduler() -> Scheduler:
    return Scheduler()


@pytest.fixture
def network(scheduler: Scheduler) -> Network:
    return Network(scheduler, rng=RngRegistry(0))


def build_group(
    protocol_cls: Type[BroadcastProtocol],
    members: Sequence[EntityId] = ("a", "b", "c"),
    latency: LatencyModel | None = None,
    seed: int = 0,
    **protocol_kwargs,
) -> tuple[Scheduler, Network, Dict[EntityId, BroadcastProtocol]]:
    """Wire one protocol stack per member on a fresh simulated network."""
    scheduler = Scheduler()
    net = Network(
        scheduler,
        latency=latency if latency is not None else UniformLatency(0.2, 1.8),
        rng=RngRegistry(seed),
    )
    membership = GroupMembership(members)
    stacks: Dict[EntityId, BroadcastProtocol] = {}
    for member in members:
        stack = protocol_cls(member, membership, **protocol_kwargs)
        net.register(stack)
        stacks[member] = stack
    return scheduler, net, stacks


def mid(sender: str, seqno: int) -> MessageId:
    """Shorthand MessageId constructor for tests."""
    return MessageId(sender, seqno)
